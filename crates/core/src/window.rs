//! Ranked windows and batched access: the pagination-native layer over
//! every [`DirectAccess`] backend.
//!
//! A logarithmic-time `access(k)` already subsumes selection and
//! enumeration, but serving one tuple per call wastes it: a client
//! paging through ranked answers pays the O(log n) rank bracketing on
//! every row. This module batches that work. [`WindowBuf`] is a
//! reusable, flat, row-major answer buffer; the window methods on
//! [`DirectAccess`] (`access_range`, `top_k`, `page` and their `*_into`
//! variants) fill whole rank ranges at once — natively on the arena
//! structures, which pay the bracketing **once per window** and then
//! walk entries in O(1) amortized per tuple; and [`RankedStream`] turns
//! any prepared plan into a lazy, batch-fetching ranked iterator in the
//! spirit of any-k enumeration: answers arrive in order with bounded
//! delay and nothing is materialized beyond the current batch.
//!
//! ```
//! use rda_core::{DirectAccess, Engine, OrderSpec, Policy};
//! use rda_db::Database;
//! use rda_query::{parser::parse, FdSet};
//!
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
//! let engine = Engine::new(db.freeze());
//! let plan = engine
//!     .prepare(&q, OrderSpec::lex(&q, &["x", "y", "z"]), &FdSet::empty(), Policy::Reject)
//!     .unwrap();
//! assert_eq!(plan.top_k(2).len(), 2);           // first page, one bracketing
//! assert_eq!(plan.page(3, 10).len(), 2);        // clamped at len() = 5
//! assert_eq!(plan.stream().count(), 5);         // lazy ranked enumeration
//! ```

use crate::plan::{DirectAccess, RankedAnswers};
use rda_db::{Tuple, Value};

/// A reusable, flat, row-major buffer of ranked answers — the batch
/// currency of the window layer.
///
/// All rows share one arity and live back to back in a single
/// `Vec<Value>`, so refilling an already-grown buffer performs **no
/// heap allocation**: the native window paths clone dictionary-decoded
/// values (`O(1)`, allocation-free — see [`rda_db::Value`]) straight
/// into the reused storage. Rows are borrowed as `&[Value]` slices;
/// convert to owned [`Tuple`]s only when you need them.
#[derive(Debug, Clone, Default)]
pub struct WindowBuf {
    arity: usize,
    rows: usize,
    values: Vec<Value>,
}

impl WindowBuf {
    /// An empty buffer. Capacity grows on first use and is kept across
    /// [`WindowBuf::clear`]/refill cycles.
    pub fn new() -> Self {
        WindowBuf::default()
    }

    /// Drop all rows (capacity is retained).
    pub fn clear(&mut self) {
        self.rows = 0;
        self.arity = 0;
        self.values.clear();
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The shared arity of the buffered rows (0 until the first row is
    /// pushed, unless a backend pre-announced it).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Row `i` as a value slice.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.rows, "row {i} out of bounds (len {})", self.rows);
        &self.values[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate the rows as value slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        (0..self.rows).map(|i| self.row(i))
    }

    /// Row `i` as an owned tuple.
    pub fn tuple(&self, i: usize) -> Tuple {
        self.row(i).iter().cloned().collect()
    }

    /// All rows as owned tuples, in order.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.tuple(i)).collect()
    }

    /// Append a row (cloning its values).
    ///
    /// # Panics
    /// Panics when `row`'s length differs from the arity of the rows
    /// already buffered.
    pub fn push_row(&mut self, row: &[Value]) {
        if self.rows == 0 && self.arity == 0 {
            self.arity = row.len();
        }
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.values.extend(row.iter().cloned());
        self.rows += 1;
    }

    /// Append a tuple's values as a row.
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_row(t.values());
    }

    /// Clear and pre-announce the arity of the rows about to be pushed
    /// — the native fill paths call this before their walk.
    pub(crate) fn begin(&mut self, arity: usize) {
        self.clear();
        self.arity = arity;
    }

    /// Append one row by letting `fill` extend the flat storage with
    /// exactly `arity()` values — the allocation-free emit path of the
    /// native walks.
    pub(crate) fn push_with(&mut self, fill: impl FnOnce(&mut Vec<Value>)) {
        let before = self.values.len();
        fill(&mut self.values);
        debug_assert_eq!(
            self.values.len(),
            before + self.arity,
            "emit wrote arity values"
        );
        self.rows += 1;
    }

    /// After [`WindowBuf::begin`]: pre-size to exactly `rows`
    /// placeholder rows so they can then be overwritten in any order
    /// through [`WindowBuf::row_mut`] — the batch access kernel walks
    /// ranks in sorted order but lands each row directly in its
    /// input-order slot, sparing a separate scatter pass. Reuses the
    /// buffer's capacity (allocation-free once grown).
    pub(crate) fn set_rows(&mut self, rows: usize) {
        self.rows = rows;
        self.values.clear();
        self.values.resize(rows * self.arity, Value::int(0));
    }

    /// Row `i` as a mutable value slice — the positioned-write
    /// counterpart of [`WindowBuf::row`].
    pub(crate) fn row_mut(&mut self, i: usize) -> &mut [Value] {
        debug_assert!(i < self.rows, "row {i} out of bounds (len {})", self.rows);
        &mut self.values[i * self.arity..(i + 1) * self.arity]
    }
}

/// Clamp a rank range to `0..len` in `u64` space (before any cast to
/// `usize`, so huge ranks never truncate on 32-bit targets), collapsing
/// inverted ranges to empty. The one clamping rule every windowed
/// backend shares.
pub(crate) fn clamp_range(range: &std::ops::Range<u64>, len: u64) -> (u64, u64) {
    let hi = range.end.min(len);
    (range.start.min(hi), hi)
}

/// How many answers a [`RankedStream`] fetches per batch by default.
pub const DEFAULT_STREAM_BATCH: usize = 256;

/// A lazy, batch-fetching iterator over a plan's ranked answers — the
/// any-k-style enumeration surface of the engine.
///
/// The stream holds a rank cursor and refills an internal [`WindowBuf`]
/// through the backend's windowed access path, so on the native arena
/// structures a full enumeration pays the O(log n) rank bracketing once
/// per **batch** (not once per tuple) and nothing is ever materialized
/// beyond one batch. On the lazy backends each batch costs what the
/// backend's per-access guarantee says; on the any-k fallback the
/// underlying enumerator advances exactly as far as the stream has been
/// consumed.
///
/// ## Generation pinning
///
/// A stream borrows its plan, and every plan pins the snapshot
/// generation it was prepared over — so a stream is **immune to
/// concurrent updates**: however many [`crate::Engine::advance`] calls
/// swap the served snapshot mid-stream, the remaining items continue
/// the *same* ranked sequence over the plan's original generation,
/// never a mix of generations. Clients that want the new data ask the
/// engine for a fresh plan and open a new stream (resuming a rank
/// position across generations is the service layer's job — see the
/// `rda_serve` cursor contract).
pub struct RankedStream<'a> {
    answers: &'a RankedAnswers,
    batch: WindowBuf,
    /// Next unread row within `batch`.
    pos: usize,
    /// Rank of the first answer not yet fetched into `batch`.
    next_rank: u64,
    batch_size: usize,
    exhausted: bool,
}

impl<'a> RankedStream<'a> {
    pub(crate) fn new(answers: &'a RankedAnswers, start: u64, batch_size: usize) -> Self {
        RankedStream {
            answers,
            batch: WindowBuf::new(),
            pos: 0,
            next_rank: start,
            batch_size: batch_size.max(1),
            exhausted: false,
        }
    }

    /// The rank the next [`Iterator::next`] call will yield.
    pub fn position(&self) -> u64 {
        self.next_rank - (self.batch.len() - self.pos) as u64
    }

    /// Ensure the internal batch holds an unread row; `false` at the
    /// end of the answers.
    fn refill(&mut self) -> bool {
        while self.pos == self.batch.len() {
            if self.exhausted {
                return false;
            }
            let want = self.batch_size as u64;
            let got = self
                .answers
                .access_range_into(self.next_rank..self.next_rank + want, &mut self.batch);
            self.next_rank += got;
            self.pos = 0;
            if got < want {
                self.exhausted = true;
            }
            if got == 0 {
                return false;
            }
        }
        true
    }
}

impl Iterator for RankedStream<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if !self.refill() {
            return None;
        }
        let t = self.batch.tuple(self.pos);
        self.pos += 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_buf_round_trips_rows() {
        let mut b = WindowBuf::new();
        assert!(b.is_empty());
        b.push_row(&[Value::int(1), Value::str("a")]);
        b.push_row(&[Value::int(2), Value::str("b")]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(1), &[Value::int(2), Value::str("b")]);
        assert_eq!(b.rows().count(), 2);
        let ts = b.to_tuples();
        assert_eq!(ts[0].values(), &[Value::int(1), Value::str("a")]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arity(), 0);
    }

    #[test]
    fn window_buf_handles_arity_zero() {
        let mut b = WindowBuf::new();
        b.begin(0);
        b.push_with(|_| {});
        b.push_with(|_| {});
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 0);
        assert_eq!(b.row(1), &[] as &[Value]);
        assert_eq!(b.rows().count(), 2);
        assert_eq!(b.to_tuples(), vec![Tuple::new(vec![]), Tuple::new(vec![])]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn window_buf_rejects_mixed_arities() {
        let mut b = WindowBuf::new();
        b.push_row(&[Value::int(1)]);
        b.push_row(&[Value::int(1), Value::int(2)]);
    }
}
