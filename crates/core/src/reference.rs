//! The pre-arena lexicographic access structure, kept as a baseline.
//!
//! This is the implementation [`crate::LexDirectAccess`] had before the
//! dictionary-encoded arena layout: per-layer `HashMap<Tuple, Bucket>`
//! with `(Value, weight, start)` entries, key tuples allocated and
//! hashed on every layer descent. It is retained verbatim for two jobs:
//!
//! * **differential testing** — `tests/oracle.rs` checks the arena
//!   structure against it answer-for-answer on randomized instances;
//! * **benchmarking** — the `access` experiment of `rda-bench` measures
//!   old-vs-new on identical workloads and records both in
//!   `BENCH_access.json`.
//!
//! It is not part of the supported API surface and keeps the pre-PR
//! behavior, including saturating (unchecked) weight arithmetic. Apart
//! from `validate_lex` and `build_derivations`, the pipeline here is
//! deliberately *duplicated*, not shared with `lexda::prepare_layers`:
//! the differential tests are only meaningful if the two structures are
//! built independently.

use crate::error::BuildError;
use crate::fdtransform::{check_fds, extend_instance};
use crate::instance::{full_reduce, normalize_instance, positions_of, reduce_to_full, sorted_vars};
use crate::lexda::{build_derivations, validate_lex, RawDerivation};
use rda_db::{Database, Relation, Tuple, Value};
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::connex::complete_order;
use rda_query::fd::{fd_extension, fd_reordered_order, FdSet};
use rda_query::jointree::{JoinTree, NodeSource};
use rda_query::layered::layered_join_tree;
use rda_query::query::Cq;
use rda_query::VarId;
use std::collections::HashMap;

/// One sorted run of a layer relation: all tuples agreeing on the
/// preceding variables, ordered by the layer's own variable.
#[derive(Debug, Clone)]
struct Bucket {
    /// `(value, weight, start)` per tuple, ascending by value
    /// (Figure 4's `w` and `s` columns).
    entries: Vec<(Value, u64, u64)>,
    /// Sum of entry weights.
    total: u64,
}

impl Bucket {
    /// Index of the first entry with value ≥ `v`, and whether it equals `v`.
    fn lower_bound(&self, v: &Value) -> (usize, bool) {
        let idx = self.entries.partition_point(|(ev, _, _)| ev < v);
        let exact = idx < self.entries.len() && &self.entries[idx].0 == v;
        (idx, exact)
    }

    /// Total weight of entries with value strictly below index `idx`.
    fn start_at(&self, idx: usize) -> u64 {
        if idx < self.entries.len() {
            self.entries[idx].2
        } else {
            self.total
        }
    }
}

/// Per-layer access structure (hash-bucketed).
#[derive(Debug, Clone)]
struct Layer {
    /// The layer's variable `v_i`.
    var: VarId,
    /// Bucket-key variables (ascending), for building keys from a
    /// partial assignment.
    key_vars: Vec<VarId>,
    /// Child layers in the layered join tree.
    children: Vec<usize>,
    /// Buckets keyed by the projection onto `key_vars`.
    buckets: HashMap<Tuple, Bucket>,
}

/// The pre-arena [`crate::LexDirectAccess`]: same algorithms (1 and 2),
/// same preprocessing, hash-map bucket layout. See the module docs for
/// why it is kept.
#[derive(Debug, Clone)]
pub struct HashLexDirectAccess {
    out_vars: Vec<VarId>,
    order: Vec<VarId>,
    var_slots: usize,
    layers: Vec<Layer>,
    derivations: Vec<RawDerivation>,
    total: u64,
}

impl HashLexDirectAccess {
    /// Build the structure; identical preconditions and failure modes to
    /// the pre-PR `LexDirectAccess::build` (in particular, weight
    /// arithmetic saturates instead of reporting overflow).
    pub fn build(q: &Cq, db: &Database, lex: &[VarId], fds: &FdSet) -> Result<Self, BuildError> {
        validate_lex(q, lex)?;
        if !fds.is_empty() && !q.is_self_join_free() {
            return Err(BuildError::InvalidOrder(
                "functional dependencies require a self-join-free query".to_string(),
            ));
        }
        match classify(q, fds, &Problem::DirectAccessLex(lex.to_vec())) {
            Verdict::Tractable { .. } => {}
            v => return Err(BuildError::NotTractable(v)),
        }

        let (nq, ndb) = normalize_instance(q, db)?;
        check_fds(&nq, &ndb, fds)?;
        let ext = fd_extension(&nq, fds);
        let idb = extend_instance(&ext, &ndb)?;
        let qp = ext.query.clone();
        let l_plus = fd_reordered_order(&ext, lex);
        let derivations = build_derivations(&ext, &idb)?;

        let red = reduce_to_full(&qp, &idb)
            .expect("classification guarantees the extension is free-connex");

        // Boolean (or fully-implied) case: no order variables at all.
        let order =
            complete_order(&qp, &l_plus).expect("classification guarantees a trio-free completion");
        if order.is_empty() {
            return Ok(HashLexDirectAccess {
                out_vars: q.free().to_vec(),
                order,
                var_slots: qp.var_count(),
                layers: Vec::new(),
                derivations,
                total: u64::from(!red.known_empty),
            });
        }

        // Layered join tree over the reduced full query.
        let edges: Vec<_> = red.query.atoms().iter().map(|a| a.var_set()).collect();
        let layered = layered_join_tree(&edges, &order)
            .expect("Lemma 3.10: the reduction preserves trio-freeness");

        // Materialize a relation per layer: project the defining edge,
        // then filter by every assigned edge.
        let f = order.len();
        let mut layer_rels: Vec<Relation> = Vec::with_capacity(f);
        let mut layer_vars: Vec<Vec<VarId>> = Vec::with_capacity(f);
        for (i, node) in layered.layers.iter().enumerate() {
            let vars = sorted_vars(node.vars);
            let def = &red.query.atoms()[node.defining_edge];
            let def_rel = red.db.get(&def.relation).expect("reduced relation exists");
            let mut rel = def_rel.project(format!("L{i}"), &positions_of(&def.terms, &vars));
            for &e in &node.assigned_edges {
                let atom = &red.query.atoms()[e];
                let e_vars = sorted_vars(atom.var_set());
                let self_keys = positions_of(&vars, &e_vars);
                let other = red.db.get(&atom.relation).expect("reduced relation exists");
                let other_keys = positions_of(&atom.terms, &e_vars);
                rel.semijoin(&self_keys, other, &other_keys);
            }
            layer_rels.push(rel);
            layer_vars.push(vars);
        }

        // Remove dangling tuples across the layered tree so every stored
        // tuple has positive weight (Figure 4's invariant).
        let mut jt = JoinTree::new();
        for (i, node) in layered.layers.iter().enumerate() {
            let idx = jt.add_node(node.vars, NodeSource::Synthetic(None));
            debug_assert_eq!(idx, i);
        }
        for (i, node) in layered.layers.iter().enumerate() {
            if let Some(p) = node.parent {
                jt.add_edge(p, i);
            }
        }
        full_reduce(&jt, &layer_vars, &mut layer_rels);

        // Counting DP, deepest layer first (children have larger index).
        let mut layers: Vec<Option<Layer>> = (0..f).map(|_| None).collect();
        for i in (0..f).rev() {
            let vars = &layer_vars[i];
            let var = order[i];
            let value_pos = vars
                .iter()
                .position(|&v| v == var)
                .expect("layer var in node");
            let key_positions: Vec<usize> = (0..vars.len()).filter(|&p| p != value_pos).collect();
            let key_vars: Vec<VarId> = key_positions.iter().map(|&p| vars[p]).collect();
            let children = layered.children(i);

            // Weight per tuple = product over children of the matching
            // bucket's total.
            let mut grouped: HashMap<Tuple, Vec<(Value, u64)>> = HashMap::new();
            for t in layer_rels[i].tuples() {
                let mut w: u64 = 1;
                for &c in &children {
                    let child = layers[c].as_ref().expect("children already built");
                    let child_key: Tuple = child
                        .key_vars
                        .iter()
                        .map(|ck| {
                            let p = vars
                                .iter()
                                .position(|v| v == ck)
                                .expect("running intersection: child keys lie in the parent node");
                            t[p].clone()
                        })
                        .collect();
                    w = w.saturating_mul(child.buckets.get(&child_key).map_or(0, |b| b.total));
                }
                if w == 0 {
                    continue;
                }
                grouped
                    .entry(t.project(&key_positions))
                    .or_default()
                    .push((t[value_pos].clone(), w));
            }
            let mut buckets = HashMap::with_capacity(grouped.len());
            for (key, mut vals) in grouped {
                vals.sort_by(|a, b| a.0.cmp(&b.0));
                let mut entries = Vec::with_capacity(vals.len());
                let mut start = 0u64;
                for (v, w) in vals {
                    entries.push((v, w, start));
                    start += w;
                }
                buckets.insert(
                    key,
                    Bucket {
                        entries,
                        total: start,
                    },
                );
            }
            layers[i] = Some(Layer {
                var,
                key_vars,
                children,
                buckets,
            });
        }
        let layers: Vec<Layer> = layers.into_iter().map(|l| l.expect("all built")).collect();
        let total = layers[0]
            .buckets
            .get(&Tuple::new(vec![]))
            .map_or(0, |b| b.total);

        Ok(HashLexDirectAccess {
            out_vars: q.free().to_vec(),
            order,
            var_slots: qp.var_count(),
            layers,
            derivations,
            total,
        })
    }

    /// Number of answers (`|Q(I)|`).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the query has no answers.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The complete internal order over `free(Q⁺)`.
    pub fn internal_order(&self) -> &[VarId] {
        &self.order
    }

    /// Algorithm 1 over the hash-bucketed layout.
    pub fn access(&self, k: u64) -> Option<Tuple> {
        if k >= self.total {
            return None;
        }
        let mut assignment: Vec<Option<Value>> = vec![None; self.var_slots];
        let mut k = k;
        let mut factor = self.total;
        let mut chosen: Vec<Option<&Bucket>> = vec![None; self.layers.len()];
        if let Some(layer) = self.layers.first() {
            chosen[0] = layer.buckets.get(&Tuple::new(vec![]));
        }
        for i in 0..self.layers.len() {
            let bucket = chosen[i].expect("positive-weight path");
            factor /= bucket.total;
            // Last entry with start·factor ≤ k.
            let idx = bucket.entries.partition_point(|(_, _, s)| *s * factor <= k) - 1;
            let (value, _, start) = &bucket.entries[idx];
            k -= start * factor;
            assignment[self.layers[i].var.index()] = Some(value.clone());
            self.descend(i, &mut chosen, &mut factor, &assignment);
        }
        Some(self.emit(&assignment))
    }

    /// Algorithm 2 over the hash-bucketed layout.
    pub fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        let target = self.target_values(answer)?;
        let (rank, exact) = self.rank_lower_bound(&target);
        exact.then_some(rank)
    }

    /// Remark 3 over the hash-bucketed layout.
    pub fn rank_of_lower_bound(&self, answer: &Tuple) -> Option<u64> {
        Some(self.rank_lower_bound(&self.target_values(answer)?).0)
    }

    /// Iterate over all answers in order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.total).map(|k| self.access(k).expect("k < total"))
    }

    fn target_values(&self, answer: &Tuple) -> Option<Vec<Value>> {
        if answer.arity() != self.out_vars.len() {
            return None;
        }
        let mut assignment: Vec<Option<Value>> = vec![None; self.var_slots];
        for (i, &v) in self.out_vars.iter().enumerate() {
            assignment[v.index()] = Some(answer[i].clone());
        }
        for d in &self.derivations {
            let from = assignment[d.from.index()].clone()?;
            assignment[d.var.index()] = Some(d.lookup.get(&from)?.clone());
        }
        self.order
            .iter()
            .map(|v| assignment[v.index()].clone())
            .collect()
    }

    fn rank_lower_bound(&self, target: &[Value]) -> (u64, bool) {
        debug_assert_eq!(target.len(), self.layers.len());
        let mut assignment: Vec<Option<Value>> = vec![None; self.var_slots];
        let mut rank = 0u64;
        let mut factor = self.total;
        let mut chosen: Vec<Option<&Bucket>> = vec![None; self.layers.len()];
        if let Some(layer) = self.layers.first() {
            chosen[0] = layer.buckets.get(&Tuple::new(vec![]));
        }
        if self.layers.is_empty() {
            return (0, self.total == 1);
        }
        for i in 0..self.layers.len() {
            let Some(bucket) = chosen[i] else {
                return (rank, false);
            };
            factor /= bucket.total;
            let (idx, exact) = bucket.lower_bound(&target[i]);
            rank += bucket.start_at(idx) * factor;
            if !exact {
                return (rank, false);
            }
            assignment[self.layers[i].var.index()] = Some(target[i].clone());
            self.descend(i, &mut chosen, &mut factor, &assignment);
        }
        (rank, true)
    }

    fn descend<'a>(
        &'a self,
        i: usize,
        chosen: &mut [Option<&'a Bucket>],
        factor: &mut u64,
        assignment: &[Option<Value>],
    ) {
        for &c in &self.layers[i].children {
            let key: Tuple = self.layers[c]
                .key_vars
                .iter()
                .map(|kv| {
                    assignment[kv.index()]
                        .clone()
                        .expect("child keys are assigned before the child layer")
                })
                .collect();
            let b = self.layers[c].buckets.get(&key);
            chosen[c] = b;
            *factor = factor.saturating_mul(b.map_or(0, |b| b.total));
        }
    }

    fn emit(&self, assignment: &[Option<Value>]) -> Tuple {
        self.out_vars
            .iter()
            .map(|v| {
                assignment[v.index()]
                    .clone()
                    .expect("all head variables assigned")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LexDirectAccess;
    use rda_db::tup;
    use rda_query::parser::parse;

    fn fig2_db() -> Database {
        Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
    }

    /// The reference structure and the arena agree on the running
    /// example — the full differential check lives in tests/oracle.rs.
    #[test]
    fn agrees_with_arena_on_figure_2() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let lex = q.vars(&["x", "y", "z"]);
        let db = fig2_db();
        let old = HashLexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
        let new = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
        assert_eq!(old.len(), new.len());
        for k in 0..old.len() {
            let t = old.access(k).unwrap();
            assert_eq!(Some(t.clone()), new.access(k));
            assert_eq!(old.inverted_access(&t), new.inverted_access(&t));
        }
        assert_eq!(
            old.rank_of_lower_bound(&tup![1, 3, 0]),
            new.rank_of_lower_bound(&tup![1, 3, 0])
        );
    }
}
