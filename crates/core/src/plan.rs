//! The uniform access layer behind [`crate::Engine`]: the
//! [`DirectAccess`] trait, the [`RankedAnswers`] handle, and the
//! [`Explain`] report.
//!
//! The paper's dichotomies sort every (query, order) pair into one of
//! three regimes — native direct access, selection-only, or provably
//! hard. Each regime historically had its own entry point with its own
//! signature; this module gives them one shape:
//!
//! * [`DirectAccess`] — `len` / `access` / `inverted_access` / `range` /
//!   `iter` with **owned** tuples everywhere, implemented by
//!   [`LexDirectAccess`], [`SumDirectAccess`], the
//!   [`MaterializedAccess`] baseline, and every lazy handle;
//! * [`RankedAnswers`] — the engine's routed backend, one enum over all
//!   strategies including the lazy selection-backed handles;
//! * [`Explain`] — why the router chose what it chose: the verdict, the
//!   structural witness (e.g. a disruptive trio), and the backend with
//!   its ⟨preprocessing, access⟩ guarantee.
//!
//! Every backend serves single accesses, whole windows, and lazy
//! streams through the same trait:
//!
//! ```
//! use rda_core::{DirectAccess, Engine, OrderSpec, Policy};
//! use rda_db::Database;
//! use rda_query::{parser::parse, FdSet};
//!
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
//! let plan = Engine::new(db.freeze())
//!     .prepare(&q, OrderSpec::lex(&q, &["x", "y", "z"]), &FdSet::empty(), Policy::Reject)
//!     .unwrap();
//! assert_eq!(plan.access(2), plan.page(2, 1).pop());       // one rank …
//! assert_eq!(plan.top_k(3), plan.access_range(0..3));      // … or a window
//! assert_eq!(plan.stream().count() as u64, plan.len());    // … or a stream
//! ```

use crate::error::BuildError;
use crate::lexsel::selection_lex_impl;
use crate::shardlex::ShardedLexAccess;
use crate::sumsel::selection_sum_impl;
use crate::weights::Weights;
use crate::window::{clamp_range, RankedStream, WindowBuf, DEFAULT_STREAM_BATCH};
use crate::{LexDirectAccess, SumDirectAccess};
use rda_baseline::{MaterializedAccess, RankedEnumerator};
use rda_db::{Snapshot, Tuple};
use rda_query::classify::{Problem, Reason, Verdict};
use rda_query::fd::FdSet;
use rda_query::query::Cq;
use rda_query::VarId;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

/// Position-indexed ranked access to a query's answers, with one owned
/// return convention for every backend.
///
/// Implementors expose the answers of a conjunctive query as a sorted,
/// random-access array without necessarily materializing it. Cost per
/// operation varies by backend — see [`Backend::guarantee`].
pub trait DirectAccess {
    /// Number of answers (`|Q(I)|`).
    ///
    /// Lazy backends may pay for the first call (selection handles probe
    /// with O(log n) selections; ranked enumeration drains the stream)
    /// and cache the result.
    fn len(&self) -> u64;

    /// `true` when the query has no answers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The answer at index `k` of the sorted answer array, or `None`
    /// when `k ≥ len()` ("out-of-bound").
    fn access(&self, k: u64) -> Option<Tuple>;

    /// The index of `answer` in the sorted answer array, or `None` when
    /// it is not an answer ("not-an-answer") — including tuples whose
    /// arity does not match the query head.
    fn inverted_access(&self, answer: &Tuple) -> Option<u64>;

    /// The answers at the ranks in `range` (clamped to the answer
    /// count), in order — one window, equivalent to the sequence of
    /// `access(k)` results for `k` in `range`.
    ///
    /// The default walks rank by rank; the native direct-access
    /// structures override it to pay their O(log n) rank bracketing
    /// once per window instead of once per tuple.
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        range.map_while(|k| self.access(k)).collect()
    }

    /// The `k` first answers (fewer when the query has fewer).
    fn top_k(&self, k: u64) -> Vec<Tuple> {
        self.access_range(0..k)
    }

    /// Page `offset..offset + len` of the answers (clamped) — the
    /// pagination shape of [`DirectAccess::access_range`].
    fn page(&self, offset: u64, len: u64) -> Vec<Tuple> {
        self.access_range(offset..offset.saturating_add(len))
    }

    /// Allocation-free [`DirectAccess::access_range`]: fill `out` with
    /// the window's rows (reusing its storage) and return how many were
    /// written. On the native structures a refill of an already-grown
    /// buffer performs **zero** heap allocations.
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        out.clear();
        let mut n = 0;
        for k in range {
            match self.access(k) {
                Some(t) => {
                    out.push_tuple(&t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Allocation-free [`DirectAccess::top_k`].
    fn top_k_into(&self, k: u64, out: &mut WindowBuf) -> u64 {
        self.access_range_into(0..k, out)
    }

    /// Batched access: the answers at the given ranks — unsorted,
    /// duplicated, and out-of-range ranks welcome — in **input order**,
    /// with out-of-range ranks skipped. Equivalent to
    /// `ranks.iter().filter_map(|&k| self.access(k))`.
    ///
    /// The default pays one full access per rank; the native structures
    /// override it to sort the ranks and amortize one shared descent
    /// across the whole batch (see
    /// [`LexDirectAccess::access_batch_into`]).
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        ranks.iter().filter_map(|&k| self.access(k)).collect()
    }

    /// Allocation-free [`DirectAccess::access_batch`]: fill `out` with
    /// the batch's rows (reusing its storage) and return how many were
    /// written. On the native structures a refill of an already-grown
    /// buffer performs **zero** heap allocations.
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        out.clear();
        let mut n = 0;
        for &k in ranks {
            if let Some(t) = self.access(k) {
                out.push_tuple(&t);
                n += 1;
            }
        }
        n
    }

    /// Allocation-free [`DirectAccess::page`].
    fn page_into(&self, offset: u64, len: u64, out: &mut WindowBuf) -> u64 {
        self.access_range_into(offset..offset.saturating_add(len), out)
    }

    /// The answers at indices `lo..hi` (clamped), in order. Equivalent
    /// to [`DirectAccess::access_range`]`(lo..hi)`, kept for callers
    /// preferring two indices over a [`Range`].
    fn range(&self, lo: u64, hi: u64) -> Vec<Tuple> {
        self.access_range(lo..hi)
    }

    /// Iterate all answers in order.
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_>;
}

impl DirectAccess for LexDirectAccess {
    fn len(&self) -> u64 {
        LexDirectAccess::len(self)
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        LexDirectAccess::access(self, k)
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        LexDirectAccess::inverted_access(self, answer)
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        LexDirectAccess::iter_range(self, range).collect()
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        LexDirectAccess::access_range_into(self, range, out)
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        LexDirectAccess::access_batch(self, ranks)
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        LexDirectAccess::access_batch_into(self, ranks, out)
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        Box::new(LexDirectAccess::iter(self))
    }
}

impl DirectAccess for ShardedLexAccess {
    fn len(&self) -> u64 {
        ShardedLexAccess::len(self)
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        ShardedLexAccess::access(self, k)
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        ShardedLexAccess::inverted_access(self, answer)
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        ShardedLexAccess::access_range(self, range)
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        ShardedLexAccess::access_range_into(self, range, out)
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        ShardedLexAccess::access_batch(self, ranks)
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        ShardedLexAccess::access_batch_into(self, ranks, out)
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        Box::new(ShardedLexAccess::iter(self))
    }
}

impl DirectAccess for SumDirectAccess {
    fn len(&self) -> u64 {
        SumDirectAccess::len(self)
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        SumDirectAccess::access(self, k)
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        SumDirectAccess::inverted_access(self, answer)
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        SumDirectAccess::iter_range(self, range).collect()
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        SumDirectAccess::access_range_into(self, range, out)
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        SumDirectAccess::access_batch(self, ranks)
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        SumDirectAccess::access_batch_into(self, ranks, out)
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        Box::new(SumDirectAccess::iter(self))
    }
}

impl DirectAccess for MaterializedAccess {
    fn len(&self) -> u64 {
        MaterializedAccess::len(self)
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        MaterializedAccess::access(self, k)
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        MaterializedAccess::inverted_access(self, answer)
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        let (lo, hi) = clamp_range(&range, self.len());
        self.answers()[lo as usize..hi as usize].to_vec()
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        out.clear();
        let (lo, hi) = clamp_range(&range, self.len());
        for t in &self.answers()[lo as usize..hi as usize] {
            out.push_tuple(t);
        }
        hi - lo
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        let answers = self.answers();
        ranks
            .iter()
            .filter_map(|&k| answers.get(k as usize).cloned())
            .collect()
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        out.clear();
        let answers = self.answers();
        let mut n = 0;
        for &k in ranks {
            if let Some(t) = answers.get(k as usize) {
                out.push_tuple(t);
                n += 1;
            }
        }
        n
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        Box::new(MaterializedAccess::iter(self))
    }
}

/// Shared by the lazy selection handles: probe `access` with an
/// exponential ramp then binary search to count answers in O(log n)
/// probes.
fn probe_len(access: &dyn Fn(u64) -> Option<Tuple>) -> u64 {
    if access(0).is_none() {
        return 0;
    }
    let mut hi = 1u64;
    while access(hi).is_some() {
        hi = hi.saturating_mul(2);
    }
    // Invariant: access(hi) is None, access(hi/2) is Some.
    let (mut lo, mut hi) = (hi / 2, hi);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if access(mid).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Lazy selection-backed handle for lexicographic orders (Theorem 6.1):
/// no preprocessing, expected O(n) per access, answers ordered by the
/// same completed internal order the selection algorithm uses.
pub struct SelectionLexHandle {
    q: Cq,
    snap: Arc<Snapshot>,
    lex: Vec<VarId>,
    fds: FdSet,
    /// Head positions realizing the completed internal order, for the
    /// inverted-access comparator (total on answers) — `None` when the
    /// head restriction is unsound (an FD-promoted variable precedes
    /// its determiner in the completion tail), forcing the linear
    /// fallback.
    cmp_positions: Option<Vec<usize>>,
    len: OnceLock<u64>,
}

impl SelectionLexHandle {
    /// A lazy handle over the snapshot's value-level relations: each
    /// access runs one selection (expected O(n)), nothing is cached but
    /// the answer count.
    pub fn new(
        q: &Cq,
        snap: &Arc<Snapshot>,
        lex: Vec<VarId>,
        fds: &FdSet,
    ) -> Result<Self, BuildError> {
        // Reconstruct the comparator matching the completed order
        // selection_lex sorts by, when the restriction to original head
        // variables is sound (see `lexsel::comparator_positions`).
        let cmp_positions = crate::lexsel::comparator_positions(q, &lex, fds)?;
        let handle = SelectionLexHandle {
            q: q.clone(),
            snap: Arc::clone(snap),
            lex,
            fds: fds.clone(),
            cmp_positions,
            len: OnceLock::new(),
        };
        // One probe so instance-level errors (missing relation, arity
        // mismatch, FD violation) surface at prepare time; afterwards
        // every access on this immutable database is infallible.
        handle.select(0)?;
        Ok(handle)
    }

    fn select(&self, k: u64) -> Result<Option<Tuple>, BuildError> {
        selection_lex_impl(&self.q, self.snap.database(), &self.lex, k, &self.fds)
    }

    /// Run exactly one selection (Theorem 6.1) for rank `k` — the raw
    /// ⟨1, n⟩ operation, with no caching. `None` means out-of-bound.
    pub fn select_once(&self, k: u64) -> Option<Tuple> {
        self.select(k).expect("validated at prepare")
    }

    fn compare(&self, positions: &[usize], a: &Tuple, b: &Tuple) -> Ordering {
        for &p in positions {
            let o = a[p].cmp(&b[p]);
            if o.is_ne() {
                return o;
            }
        }
        Ordering::Equal
    }
}

impl DirectAccess for SelectionLexHandle {
    fn len(&self) -> u64 {
        *self
            .len
            .get_or_init(|| probe_len(&|k| self.select(k).expect("validated at prepare")))
    }

    fn access(&self, k: u64) -> Option<Tuple> {
        self.select(k).expect("validated at prepare")
    }

    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        if answer.arity() != self.q.free().len() {
            return None; // wrong arity is never an answer
        }
        let Some(positions) = &self.cmp_positions else {
            // No sound comparator: scan ranks (rare FD corner; see
            // `cmp_positions`).
            return (0..self.len()).find(|&k| self.access(k).as_ref() == Some(answer));
        };
        // The completed order is total on answers, so binary search with
        // O(log n) selection calls finds the only candidate rank.
        let (mut lo, mut hi) = (0u64, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let t = self.access(mid)?;
            match self.compare(positions, answer, &t) {
                Ordering::Less => hi = mid,
                Ordering::Greater => lo = mid + 1,
                Ordering::Equal => return (&t == answer).then_some(mid),
            }
        }
        None
    }

    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        Box::new((0..self.len()).map(|k| self.access(k).expect("k < len")))
    }
}

/// Lazy selection-backed handle for sum-of-weights orders (Theorem 7.3):
/// no preprocessing, expected O(n log n) per access.
///
/// The underlying selection algorithm only pins answers down by weight
/// (ties are broken arbitrarily, and the same representative can come
/// back for every rank of an equal-weight plateau), so this handle
/// defines its order as **(weight, then tuple)**: ranks whose weight is
/// unique are served straight from selection, while ranks inside a tie
/// plateau are served from a lazily materialized tie-break index built
/// on first contact with a tie. Workloads with distinct weights never
/// pay for that index.
pub struct SelectionSumHandle {
    q: Cq,
    snap: Arc<Snapshot>,
    weights: Weights,
    fds: FdSet,
    len: OnceLock<u64>,
    tie_index: OnceLock<MaterializedAccess>,
}

impl SelectionSumHandle {
    /// A lazy handle over the snapshot's value-level relations: each
    /// access runs one weighted selection (expected O(n log n)).
    pub fn new(
        q: &Cq,
        snap: &Arc<Snapshot>,
        weights: Weights,
        fds: &FdSet,
    ) -> Result<Self, BuildError> {
        let handle = SelectionSumHandle {
            q: q.clone(),
            snap: Arc::clone(snap),
            weights,
            fds: fds.clone(),
            len: OnceLock::new(),
            tie_index: OnceLock::new(),
        };
        handle.select(0)?; // surface instance errors at prepare time
        Ok(handle)
    }

    fn select(&self, k: u64) -> Result<Option<(rda_orderstat::TotalF64, Tuple)>, BuildError> {
        selection_sum_impl(&self.q, self.snap.database(), &self.weights, k, &self.fds)
    }

    fn select_ok(&self, k: u64) -> Option<(rda_orderstat::TotalF64, Tuple)> {
        self.select(k).expect("validated at prepare")
    }

    /// Run exactly one weighted selection (Theorem 7.3) for rank `k` —
    /// the raw ⟨1, n log n⟩ operation: ties broken arbitrarily, no tie
    /// index, no caching. `None` means out-of-bound.
    pub fn select_once(&self, k: u64) -> Option<(rda_orderstat::TotalF64, Tuple)> {
        self.select_ok(k)
    }

    /// `true` when rank `k` (with weight `w`) shares its weight with a
    /// neighboring rank — two O(n log n) probes.
    fn is_tied(&self, k: u64, w: rda_orderstat::TotalF64) -> bool {
        (k > 0 && self.select_ok(k - 1).map(|(p, _)| p) == Some(w))
            || self.select_ok(k + 1).map(|(n, _)| n) == Some(w)
    }

    /// The materialized (weight, tuple)-sorted array serving tie
    /// plateaus; built once, on the first access that hits a tie.
    fn tie_index(&self) -> &MaterializedAccess {
        self.tie_index.get_or_init(|| {
            MaterializedAccess::by_sum(&self.q, self.snap.database(), |v, val| {
                self.weights.get(v, val).0
            })
        })
    }

    /// `true` once a tie forced the lazily materialized tie-break index
    /// into existence — the materialization meter for laziness tests:
    /// windowed scans over distinct-weight workloads must never flip it.
    pub fn tie_index_built(&self) -> bool {
        self.tie_index.get().is_some()
    }

    /// The answer at index `k` together with its weight.
    pub fn access_weighted(&self, k: u64) -> Option<(rda_orderstat::TotalF64, Tuple)> {
        // Once the tie index exists it is strictly cheaper than
        // selection — serve everything from it.
        if let Some(idx) = self.tie_index.get() {
            let t = idx.access(k)?;
            let w = rda_orderstat::TotalF64(idx.weight_at(k).expect("by_sum stores weights"));
            return Some((w, t));
        }
        let (w, t) = self.select_ok(k)?;
        if self.is_tied(k, w) {
            let t = self.tie_index().access(k).expect("same answer count");
            Some((w, t))
        } else {
            Some((w, t))
        }
    }
}

impl DirectAccess for SelectionSumHandle {
    fn len(&self) -> u64 {
        if let Some(idx) = self.tie_index.get() {
            return idx.len();
        }
        *self
            .len
            .get_or_init(|| probe_len(&|k| self.select_ok(k).map(|(_, t)| t)))
    }

    fn access(&self, k: u64) -> Option<Tuple> {
        self.access_weighted(k).map(|(_, t)| t)
    }

    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        if answer.arity() != self.q.free().len() {
            return None; // wrong arity is never an answer
        }
        if let Some(idx) = self.tie_index.get() {
            return idx.inverted_access(answer);
        }
        // Binary-search the first rank at the answer's weight; a unique
        // weight pins the rank, a plateau defers to the tie index.
        let w = self.weights.answer_weight(self.q.free(), answer.values());
        let (mut lo, mut hi) = (0u64, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (wm, _) = self.select_ok(mid)?;
            if wm < w {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let (wl, tl) = self.select_ok(lo)?;
        if wl != w {
            return None;
        }
        if self.is_tied(lo, w) {
            self.tie_index().inverted_access(answer)
        } else {
            (&tl == answer).then_some(lo)
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        // A full scan by repeated selection would cost ~3 selections per
        // rank; the tie index serves the identical (weight, tuple) order
        // in one O(|out| log |out|) build and O(1) per element.
        Box::new(self.tie_index().iter())
    }
}

/// Fallback handle over the any-k ranked enumerator (Tziavelis et al.):
/// `access(k)` materializes the answer stream up to `k` and caches it,
/// so sequential scans pay logarithmic delay per step while random
/// access costs Θ(k log n) on first touch.
///
/// The enumerator state sits behind a [`Mutex`], so a shared plan stays
/// usable from many threads — concurrent accesses serialize on the
/// stream (it is inherently sequential) but serve cached prefixes
/// without re-enumerating.
pub struct RankedEnumHandle {
    state: Mutex<EnumState>,
}

struct EnumState {
    enumerator: RankedEnumerator,
    cache: Vec<Tuple>,
    exhausted: bool,
}

impl EnumState {
    /// Extend the cached prefix to `target` answers (or exhaustion).
    fn fill_to(&mut self, target: u64) {
        if self.exhausted {
            return;
        }
        while (self.cache.len() as u64) < target {
            match self.enumerator.next() {
                Some((_, t)) => self.cache.push(t),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
    }
}

impl RankedEnumHandle {
    pub(crate) fn new(enumerator: RankedEnumerator) -> Self {
        RankedEnumHandle {
            state: Mutex::new(EnumState {
                enumerator,
                cache: Vec::new(),
                exhausted: false,
            }),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, EnumState> {
        self.state.lock().expect("enumerator state not poisoned")
    }

    /// How many answers the underlying enumerator has produced so far —
    /// the laziness meter: streaming a prefix must keep this close to
    /// the prefix length, never the full answer count.
    pub fn cached_prefix_len(&self) -> u64 {
        self.state().cache.len() as u64
    }
}

impl DirectAccess for RankedEnumHandle {
    fn len(&self) -> u64 {
        let mut s = self.state();
        s.fill_to(u64::MAX);
        s.cache.len() as u64
    }

    fn is_empty(&self) -> bool {
        // The default would drain the whole stream via len(); popping
        // one answer settles emptiness in O(log n).
        let mut s = self.state();
        s.fill_to(1);
        s.cache.is_empty()
    }

    fn access(&self, k: u64) -> Option<Tuple> {
        let mut s = self.state();
        s.fill_to(k.saturating_add(1));
        s.cache.get(k as usize).cloned()
    }

    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        // The stream is only ordered by weight; without the weight of
        // `answer` we scan — Θ(len) on first call, cached afterwards.
        let mut s = self.state();
        s.fill_to(u64::MAX);
        s.cache.iter().position(|t| t == answer).map(|i| i as u64)
    }

    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        // One lock and one fill for the whole window; filling only to
        // `range.end` (never via len()) keeps the pay-as-you-go
        // guarantee.
        let mut s = self.state();
        s.fill_to(range.end);
        let (lo, hi) = clamp_range(&range, s.cache.len() as u64);
        s.cache[lo as usize..hi as usize].to_vec()
    }

    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        out.clear();
        let mut s = self.state();
        s.fill_to(range.end);
        let (lo, hi) = clamp_range(&range, s.cache.len() as u64);
        for t in &s.cache[lo as usize..hi as usize] {
            out.push_tuple(t);
        }
        hi - lo
    }

    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        // One lock and one fill (to the largest requested rank) for the
        // whole batch, instead of a lock round trip per rank.
        let mut s = self.state();
        if let Some(&max) = ranks.iter().max() {
            s.fill_to(max.saturating_add(1));
        }
        ranks
            .iter()
            .filter_map(|&k| s.cache.get(k as usize).cloned())
            .collect()
    }

    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        out.clear();
        let mut s = self.state();
        if let Some(&max) = ranks.iter().max() {
            s.fill_to(max.saturating_add(1));
        }
        let mut n = 0;
        for &k in ranks {
            if let Some(t) = s.cache.get(k as usize) {
                out.push_tuple(t);
                n += 1;
            }
        }
        n
    }

    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        // Not via len(): a partial consumer (`iter().take(5)`) must not
        // drain the whole stream up front.
        Box::new((0u64..).map_while(|k| self.access(k)))
    }
}

/// The engine's routed backend: every strategy behind one enum, all
/// implementing [`DirectAccess`]. Since the snapshot refactor every
/// variant owns (or `Arc`-shares) its data, so a routed backend is
/// `Send + Sync + 'static` — one plan can serve many client threads.
pub enum RankedAnswers {
    /// Native lexicographic direct access (⟨n log n, log n⟩).
    Lex(LexDirectAccess),
    /// Native lexicographic direct access built shard-parallel over a
    /// sharded snapshot — same order and guarantees as
    /// [`RankedAnswers::Lex`], with ranks routed through a per-shard
    /// offset table (see [`ShardedLexAccess`]).
    ShardedLex(ShardedLexAccess),
    /// Native sum-of-weights direct access (⟨n log n, 1⟩).
    Sum(SumDirectAccess),
    /// Lazy lexicographic selection (⟨1, n⟩ per access).
    SelectionLex(SelectionLexHandle),
    /// Lazy sum-of-weights selection (⟨1, n log n⟩ per access).
    SelectionSum(SelectionSumHandle),
    /// Materialize-and-sort fallback (Θ(|out| log |out|) preprocessing,
    /// O(1) access).
    Materialized(MaterializedAccess),
    /// Ranked-enumeration fallback (any-k; Θ(k log n) to first reach
    /// index `k`, cached).
    RankedEnum(RankedEnumHandle),
}

// The concurrency contract of the serving core: a prepared plan is
// shareable across client threads as-is.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RankedAnswers>();
    assert_send_sync::<AccessPlan>();
};

macro_rules! dispatch {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            RankedAnswers::Lex($inner) => $e,
            RankedAnswers::ShardedLex($inner) => $e,
            RankedAnswers::Sum($inner) => $e,
            RankedAnswers::SelectionLex($inner) => $e,
            RankedAnswers::SelectionSum($inner) => $e,
            RankedAnswers::Materialized($inner) => $e,
            RankedAnswers::RankedEnum($inner) => $e,
        }
    };
}

impl DirectAccess for RankedAnswers {
    fn len(&self) -> u64 {
        dispatch!(self, b => DirectAccess::len(b))
    }
    // is_empty and range are forwarded (not defaulted) so backends with
    // lazy overrides — the ranked-enum handle — keep them through the
    // facade.
    fn is_empty(&self) -> bool {
        dispatch!(self, b => DirectAccess::is_empty(b))
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        dispatch!(self, b => DirectAccess::access(b, k))
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        dispatch!(self, b => DirectAccess::inverted_access(b, answer))
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        dispatch!(self, b => DirectAccess::access_range(b, range))
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        dispatch!(self, b => DirectAccess::access_range_into(b, range, out))
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        dispatch!(self, b => DirectAccess::access_batch(b, ranks))
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        dispatch!(self, b => DirectAccess::access_batch_into(b, ranks, out))
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        dispatch!(self, b => DirectAccess::iter(b))
    }
}

impl fmt::Debug for RankedAnswers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RankedAnswers::{}", self.backend())
    }
}

impl RankedAnswers {
    /// Allocation-free access: write the answer at index `k` into `out`
    /// (reusing its capacity) and report whether `k` was in bounds. The
    /// native direct-access backends serve this with **zero** heap
    /// allocations; other backends fall back to an owned access and
    /// copy into `out`.
    pub fn access_into(&self, k: u64, out: &mut Vec<rda_db::Value>) -> bool {
        match self {
            RankedAnswers::Lex(da) => da.access_into(k, out),
            RankedAnswers::ShardedLex(da) => da.access_into(k, out),
            RankedAnswers::Sum(da) => da.access_into(k, out),
            other => match DirectAccess::access(other, k) {
                Some(t) => {
                    out.clear();
                    out.extend(t.iter().cloned());
                    true
                }
                None => {
                    out.clear();
                    false
                }
            },
        }
    }

    /// A lazy, batch-fetching ranked iterator over all answers (see
    /// [`RankedStream`]): any-k-style enumeration with nothing
    /// materialized beyond one batch.
    pub fn stream(&self) -> RankedStream<'_> {
        self.stream_from(0)
    }

    /// [`RankedAnswers::stream`] starting at rank `start` — resume a
    /// paginated scan exactly where the previous page ended.
    pub fn stream_from(&self, start: u64) -> RankedStream<'_> {
        RankedStream::new(self, start, DEFAULT_STREAM_BATCH)
    }

    /// [`RankedAnswers::stream_from`] with an explicit batch size — the
    /// resumption hook for service layers that re-create a stream per
    /// request from a client cursor and want the batch to match the
    /// requested page.
    pub fn stream_batched(&self, start: u64, batch: usize) -> RankedStream<'_> {
        RankedStream::new(self, start, batch)
    }

    /// Which backend the router chose.
    pub fn backend(&self) -> Backend {
        match self {
            // Sharded builds are the same structure with a routing
            // table in front; `Explain::routing` carries the shard
            // report.
            RankedAnswers::Lex(_) | RankedAnswers::ShardedLex(_) => Backend::LexDirectAccess,
            RankedAnswers::Sum(_) => Backend::SumDirectAccess,
            RankedAnswers::SelectionLex(_) => Backend::SelectionLex,
            RankedAnswers::SelectionSum(_) => Backend::SelectionSum,
            RankedAnswers::Materialized(_) => Backend::Materialized,
            RankedAnswers::RankedEnum(_) => Backend::RankedEnum,
        }
    }
}

/// The strategies [`crate::Engine`] routes between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// [`LexDirectAccess`] — the paper's layered-join-tree structure.
    LexDirectAccess,
    /// [`SumDirectAccess`] — the paper's covered-free-variables case.
    SumDirectAccess,
    /// Per-access lexicographic selection (Theorem 6.1).
    SelectionLex,
    /// Per-access sum selection (Theorem 7.3).
    SelectionSum,
    /// Materialize-and-sort baseline.
    Materialized,
    /// Any-k ranked enumeration baseline.
    RankedEnum,
}

impl Backend {
    /// The ⟨preprocessing, per-access⟩ cost guarantee.
    pub fn guarantee(self) -> &'static str {
        match self {
            Backend::LexDirectAccess => "<n log n, log n>",
            Backend::SumDirectAccess => "<n log n, 1>",
            Backend::SelectionLex => "<1, n>",
            Backend::SelectionSum => "<1, n log n>",
            Backend::Materialized => "<|out| log |out|, 1>",
            Backend::RankedEnum => "<n log n, k log n amortized>",
        }
    }

    /// `true` for the paper's native direct-access structures.
    pub fn is_native_direct_access(self) -> bool {
        matches!(self, Backend::LexDirectAccess | Backend::SumDirectAccess)
    }

    /// `true` for the explicit fallbacks outside the tractable regions.
    pub fn is_fallback(self) -> bool {
        matches!(self, Backend::Materialized | Backend::RankedEnum)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Backend::LexDirectAccess => "lex-direct-access",
            Backend::SumDirectAccess => "sum-direct-access",
            Backend::SelectionLex => "selection-lex",
            Backend::SelectionSum => "selection-sum",
            Backend::Materialized => "materialized",
            Backend::RankedEnum => "ranked-enum",
        };
        write!(f, "{name}")
    }
}

/// Render `reason` with the query's variable names (the classifier
/// reports raw [`VarId`]s).
pub(crate) fn describe_reason(q: &Cq, reason: &Reason) -> String {
    let names = |vs: &[VarId]| -> String {
        vs.iter()
            .map(|&v| q.var_name(v))
            .collect::<Vec<_>>()
            .join(", ")
    };
    match reason {
        Reason::DisruptiveTrio(a, b, c) => {
            format!("disruptive trio ({})", names(&[*a, *b, *c]))
        }
        Reason::NotFreeConnex { free_path: Some(p) } => {
            format!("not free-connex: free path ({})", names(p))
        }
        Reason::NotLConnex { l_path: Some(p) } => {
            format!("not L-connex for the prefix: L-path ({})", names(p))
        }
        other => other.to_string(),
    }
}

/// How a sharded build routes the global rank space to its per-shard
/// structures — the [`Explain`]-side report of snapshot sharding.
///
/// Two routing modes exist. **Contiguous** (lex): shard `s` owns the
/// global rank interval `[offsets()[s], offsets()[s+1])`, so every
/// access touches exactly one shard (or one run of shards for a
/// window). **Merged** (sum): per-shard answers interleave in the
/// global weight order, so the per-shard structures were merged into
/// one at build time and `offsets()` only reports how many answers
/// each shard contributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouting {
    shards: usize,
    offsets: Vec<u64>,
    contiguous: bool,
}

impl ShardRouting {
    /// Contiguous-rank routing from a shard offset table
    /// (`shards + 1` non-decreasing entries starting at 0).
    pub(crate) fn contiguous(offsets: Vec<u64>) -> Self {
        ShardRouting {
            shards: offsets.len().saturating_sub(1),
            offsets,
            contiguous: true,
        }
    }

    /// Merged routing from per-shard answer counts.
    pub(crate) fn merged(rows: Vec<u64>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for r in &rows {
            acc += r;
            offsets.push(acc);
        }
        ShardRouting {
            shards: rows.len(),
            offsets,
            contiguous: false,
        }
    }

    /// Number of shards the build fanned out over (1 when the build
    /// degenerated to a single shard).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// `true` when global ranks route to single shards by interval
    /// (lex); `false` when shards were weight-merged at build (sum).
    pub fn is_contiguous(&self) -> bool {
        self.contiguous
    }

    /// Prefix sums of per-shard answer counts (`shards() + 1` entries).
    /// Under contiguous routing these are the exact global rank
    /// boundaries of each shard.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// How many answers shard `s` contributed.
    pub fn shard_rows(&self, s: usize) -> u64 {
        self.offsets[s + 1] - self.offsets[s]
    }

    /// The shard serving global rank `rank`, under contiguous routing
    /// with `rank` in bounds; `None` otherwise.
    pub fn shard_of(&self, rank: u64) -> Option<usize> {
        if !self.contiguous || rank >= *self.offsets.last().unwrap_or(&0) {
            return None;
        }
        Some(self.offsets.partition_point(|&o| o <= rank) - 1)
    }
}

/// The router's report: what was asked, what the dichotomy said, which
/// structural witness certifies it, and which backend now serves the
/// answers.
#[derive(Debug, Clone)]
pub struct Explain {
    pub(crate) problem: Problem,
    pub(crate) problem_desc: String,
    pub(crate) verdict: Verdict,
    pub(crate) selection_verdict: Option<Verdict>,
    pub(crate) witness: Option<String>,
    pub(crate) backend: Backend,
    pub(crate) routing: Option<ShardRouting>,
}

impl Explain {
    /// The direct-access problem the order was classified for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The dichotomy's verdict on *direct access* for this order.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The selection verdict, when the router had to consult it (i.e.
    /// when direct access was not tractable).
    pub fn selection_verdict(&self) -> Option<&Verdict> {
        self.selection_verdict.as_ref()
    }

    /// The structural witness for a non-tractable verdict (disruptive
    /// trio, free path, L-path, αfree, fmh), with variable names.
    pub fn witness(&self) -> Option<&str> {
        self.witness.as_deref()
    }

    /// The backend the router chose.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The shard routing report, when the plan was built over a sharded
    /// snapshot; `None` for unsharded builds and non-native backends.
    pub fn routing(&self) -> Option<&ShardRouting> {
        self.routing.as_ref()
    }
}

/// A prepared, ready-to-serve ranked view of a query's answers: the
/// routed [`RankedAnswers`] backend plus the [`Explain`] report saying
/// why that backend was chosen.
///
/// The plan borrows the database it was prepared over (lazy backends
/// re-read it on every access), so it costs nothing to keep around.
/// It implements [`DirectAccess`] by delegation, so most callers never
/// need to look inside.
pub struct AccessPlan {
    answers: RankedAnswers,
    explain: Explain,
    /// The [`Snapshot::generation`] this plan was prepared over.
    generation: u64,
}

impl fmt::Debug for AccessPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessPlan")
            .field("backend", &self.explain.backend)
            .field("verdict", &self.explain.verdict)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl AccessPlan {
    pub(crate) fn new(answers: RankedAnswers, explain: Explain) -> Self {
        AccessPlan {
            answers,
            explain,
            generation: 0,
        }
    }

    /// Stamp the snapshot generation this plan was prepared over (done
    /// once, by the routing layer).
    pub(crate) fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The snapshot generation this plan serves: every answer it
    /// returns reflects exactly that generation's data, however many
    /// [`crate::Engine::advance`] calls happen around it. A plan
    /// carried forward across generations keeps its original number —
    /// its relations provably did not change, so the generations are
    /// indistinguishable through it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The routed backend handle.
    pub fn answers(&self) -> &RankedAnswers {
        &self.answers
    }

    /// Unwrap into the backend handle, dropping the report.
    pub fn into_answers(self) -> RankedAnswers {
        self.answers
    }

    /// The routing report: verdict, witness, and chosen backend.
    pub fn explain(&self) -> &Explain {
        &self.explain
    }

    /// Which backend serves this plan (shorthand for
    /// `explain().backend()`).
    pub fn backend(&self) -> Backend {
        self.explain.backend
    }

    /// Allocation-free access (see [`RankedAnswers::access_into`]).
    pub fn access_into(&self, k: u64, out: &mut Vec<rda_db::Value>) -> bool {
        self.answers.access_into(k, out)
    }

    /// The window of answers at the ranks in `range`, as a reusable
    /// batch buffer — [`DirectAccess::access_range`]'s rows without the
    /// per-tuple `Tuple` allocations. See [`AccessPlan::window_into`]
    /// to reuse a caller-owned buffer across pages.
    pub fn window(&self, range: Range<u64>) -> WindowBuf {
        let mut out = WindowBuf::new();
        self.answers.access_range_into(range, &mut out);
        out
    }

    /// Fill `out` with the window of answers at the ranks in `range`
    /// (clamped), returning how many rows were written. On the native
    /// direct-access backends this pays the rank bracketing once per
    /// window and performs **zero** heap allocations once `out` has
    /// grown to the window's size.
    pub fn window_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        self.answers.access_range_into(range, out)
    }

    /// Batched access: the answers at `ranks` (any order, duplicates
    /// allowed, out-of-range ranks skipped), in the order requested.
    /// See [`DirectAccess::access_batch`] for the contract and
    /// [`AccessPlan::access_batch_into`] for the allocation-free form.
    pub fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        DirectAccess::access_batch(&self.answers, ranks)
    }

    /// Fill `out` with the answers at `ranks`, in request order,
    /// returning how many were in range. On the lex arena backend the
    /// whole batch costs **one** rank descent plus O(k) local cursor
    /// advances (see [`DirectAccess::access_batch_into`]).
    pub fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        DirectAccess::access_batch_into(&self.answers, ranks, out)
    }

    /// A lazy, batch-fetching ranked iterator over the plan's answers —
    /// ranked enumeration in the any-k style: answers arrive in order,
    /// the next-batch cursor lives in the stream, and nothing is
    /// materialized beyond one batch (see [`RankedStream`]).
    pub fn stream(&self) -> RankedStream<'_> {
        self.answers.stream()
    }

    /// [`AccessPlan::stream`] starting at rank `start` — resume a
    /// paginated scan exactly where the previous page ended.
    pub fn stream_from(&self, start: u64) -> RankedStream<'_> {
        self.answers.stream_from(start)
    }

    /// [`AccessPlan::stream_from`] with an explicit batch size (see
    /// [`RankedAnswers::stream_batched`]).
    pub fn stream_batched(&self, start: u64, batch: usize) -> RankedStream<'_> {
        self.answers.stream_batched(start, batch)
    }
}

impl DirectAccess for AccessPlan {
    fn len(&self) -> u64 {
        self.answers.len()
    }
    fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
    fn access(&self, k: u64) -> Option<Tuple> {
        self.answers.access(k)
    }
    fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        self.answers.inverted_access(answer)
    }
    fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        self.answers.access_range(range)
    }
    fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        self.answers.access_range_into(range, out)
    }
    fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        DirectAccess::access_batch(&self.answers, ranks)
    }
    fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        DirectAccess::access_batch_into(&self.answers, ranks, out)
    }
    fn iter(&self) -> Box<dyn Iterator<Item = Tuple> + '_> {
        self.answers.iter()
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "problem:  {}", self.problem_desc)?;
        match &self.verdict {
            Verdict::Tractable { bound } => {
                write!(f, "\nverdict:  tractable direct access in {bound}")?
            }
            Verdict::Intractable { assumptions, .. } => write!(
                f,
                "\nverdict:  direct access intractable (assuming {})",
                assumptions.join(" + ")
            )?,
            Verdict::OpenSelfJoin { .. } => write!(
                f,
                "\nverdict:  criterion fails; hardness open (query has self-joins)"
            )?,
        }
        if let Some(w) = &self.witness {
            write!(f, "\nwitness:  {w}")?;
        }
        if let Some(sv) = &self.selection_verdict {
            match sv {
                Verdict::Tractable { bound } => write!(f, "\nselection: tractable in {bound}")?,
                v => write!(
                    f,
                    "\nselection: not tractable ({})",
                    v.reason().map(|r| r.to_string()).unwrap_or_default()
                )?,
            }
        }
        write!(
            f,
            "\nbackend:  {} {}",
            self.backend,
            self.backend.guarantee()
        )?;
        if let Some(r) = &self.routing {
            write!(
                f,
                "\nshards:   {} ({} routing)",
                r.shards(),
                if r.is_contiguous() {
                    "contiguous-rank"
                } else {
                    "weight-merged"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::{tup, Database};
    use rda_query::parser::parse;

    fn fig2_snap() -> Arc<Snapshot> {
        Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
            .freeze()
    }

    /// When no sound head-restricted comparator exists (an FD corner —
    /// see `lexsel::comparator_positions`), inverted access must still
    /// be correct through the linear fallback.
    #[test]
    fn selection_lex_handle_fallback_without_comparator() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let snap = fig2_snap();
        let mut handle =
            SelectionLexHandle::new(&q, &snap, q.vars(&["x", "z", "y"]), &FdSet::empty()).unwrap();
        assert!(
            handle.cmp_positions.is_some(),
            "parse-built queries are sound"
        );
        handle.cmp_positions = None; // force the fallback path
        for k in 0..handle.len() {
            let t = handle.access(k).unwrap();
            assert_eq!(handle.inverted_access(&t), Some(k), "k={k}");
        }
        assert_eq!(handle.inverted_access(&tup![0, 0, 0]), None);
    }

    /// probe_len agrees with the true count on every boundary shape
    /// (0, 1, powers of two, off-by-one around them).
    #[test]
    fn probe_len_boundaries() {
        for n in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100] {
            let access = |k: u64| (k < n).then(|| Tuple::new(vec![]));
            assert_eq!(probe_len(&access), n, "n={n}");
        }
    }

    /// The ranked-enum handle stays lazy under partial consumption.
    #[test]
    fn ranked_enum_iter_is_lazy() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db =
            Database::new().with_i64_rows("R", 2, (0..100).map(|i| vec![i, i]).collect::<Vec<_>>());
        let e = RankedEnumerator::new(&q, &db, |_, v| v.as_int().map_or(0.0, |i| i as f64));
        let h = RankedEnumHandle::new(e);
        let first3: Vec<Tuple> = h.iter().take(3).collect();
        assert_eq!(first3.len(), 3);
        assert!(
            h.cached_prefix_len() < 100,
            "iter().take(3) must not drain the stream (cached {})",
            h.cached_prefix_len()
        );
        assert!(!h.is_empty());
        assert!(h.cached_prefix_len() < 100, "is_empty must stay lazy");
        assert_eq!(h.range(2, 5).len(), 3);
        assert_eq!(h.access_range(2..5).len(), 3);
        let mut buf = WindowBuf::new();
        assert_eq!(h.access_range_into(2..5, &mut buf), 3);
        assert_eq!(buf.to_tuples(), h.access_range(2..5));
        assert!(h.cached_prefix_len() < 100, "windows must stay lazy");
        assert_eq!(h.len(), 100); // len() is the one that drains
    }
}
