#![warn(missing_docs)]

//! # rda-core — ranked direct access and selection for conjunctive queries
//!
//! The algorithms of Carmeli, Tziavelis, Gatterbauer, Kimelfeld,
//! Riedewald, *"Tractable Orders for Direct Access to Ranked Answers of
//! Conjunctive Queries"* (PODS 2021):
//!
//! * [`LexDirectAccess`] — direct access by (partial) lexicographic
//!   orders in ⟨n log n, log n⟩ (Sections 3–4: layered join trees,
//!   Algorithm 1), with inverted access (Algorithm 2) and
//!   next-answer access (Remark 3);
//! * [`SelectionLexHandle`] — selection by lexicographic orders in ⟨1, n⟩
//!   for every free-connex CQ (Section 6, Lemmas 6.5/6.6);
//! * [`SumDirectAccess`] — direct access by sum-of-weights in
//!   ⟨n log n, 1⟩ when one atom covers the free variables (Section 5,
//!   Lemma 5.9);
//! * [`SelectionSumHandle`] — selection by sum-of-weights in ⟨1, n log n⟩
//!   when `fmh(Q) ≤ 2` (Section 7, Lemmas 7.8/7.10);
//! * all four transparently handle unary functional dependencies via
//!   the FD-(reordered-)extension (Section 8).
//!
//! Builders verify the paper's tractability criteria and return
//! [`BuildError::NotTractable`] with the structural witness otherwise;
//! see [`mod@rda_query::classify`] for the bare decision procedures.
//!
//! The access structures run on a dictionary-encoded columnar core:
//! the active domain is interned into order-preserving `u32` codes
//! ([`rda_db::Dictionary`]), layers are flat arenas with packed entries
//! and per-bucket rank directories, and the access hot paths perform no
//! heap allocation (see the `lexda`/`sumda` module docs). The pre-arena
//! hash-bucketed implementation survives as
//! [`reference::HashLexDirectAccess`] for differential testing and
//! benchmarking.
//!
//! ## The front door
//!
//! Since 0.3.0 the serving path is **snapshot-centric**: freeze a
//! database once ([`rda_db::Database::freeze`]) so it is
//! dictionary-encoded exactly once, and hand the resulting
//! [`Arc<Snapshot>`](rda_db::Snapshot) to a stateful [`Engine`].
//! [`Engine::prepare`] classifies a query/order pair, routes it to
//! native direct access (built straight from the snapshot's code
//! space), a lazy selection-backed handle, or an explicit [`Policy`]
//! fallback, and memoizes the resulting
//! [`Arc<AccessPlan>`](AccessPlan) in a bounded plan cache keyed by
//! (query, order, FDs, policy). Plans are `Send + Sync`: one prepared
//! plan serves any number of client threads concurrently, answering
//! through the uniform [`DirectAccess`] trait and explaining its
//! routing via [`Explain`]. Since 0.4.0 the trait is
//! **pagination-native**: whole rank windows (`access_range`, `top_k`,
//! `page`, with allocation-free `*_into` variants over [`WindowBuf`])
//! pay the native structures' rank bracketing once per window, and
//! [`AccessPlan::stream`] enumerates lazily in batches ([`RankedStream`],
//! any-k style — see [`mod@window`]). Since 0.5.0 the pre-snapshot
//! shims (`Engine::prepare_stateless` and the PR-1 selection free
//! functions) are gone: the engine is the single entry point, and the
//! [`rda_serve`-style](engine::canonical_request_key) service hooks —
//! [`engine::canonical_request_key`], [`engine::plan_dependencies`],
//! and resumable [`AccessPlan::stream_batched`] cursors — let a request
//! front door encode plan identity and data versions into opaque
//! pagination tokens.

pub mod budget;
pub mod decompose;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fdtransform;
pub mod instance;
pub mod lexda;
pub mod lexsel;
pub mod plan;
pub mod random_order;
mod rankdir;
pub mod reference;
pub mod shardlex;
pub mod snapprep;
pub mod sumda;
pub mod sumsel;
pub mod tupleweights;
pub mod weights;
pub mod window;

pub use budget::{BudgetMeter, BuildBudget};
pub use decompose::{lex_direct_access_decomposed, rewrite_by_decomposition};
pub use engine::{
    canonical_request_key, plan_dependencies, Engine, OpenError, OrderSpec, PlanError, Policy,
};
pub use error::BuildError;
pub use fault::{FaultAction, FaultGuard, FaultPlan, InjectedFault};
pub use lexda::{ArenaLayout, LexDirectAccess, LexRangeIter};
pub use plan::{
    AccessPlan, Backend, DirectAccess, Explain, RankedAnswers, RankedEnumHandle,
    SelectionLexHandle, SelectionSumHandle, ShardRouting,
};
pub use random_order::{Quantiles, RandomOrderEnumerator};
pub use reference::HashLexDirectAccess;
pub use shardlex::ShardedLexAccess;
pub use sumda::SumDirectAccess;
pub use tupleweights::{selection_sum_tw, SumDirectAccessTw, TupleWeights};
pub use weights::Weights;
pub use window::{RankedStream, WindowBuf, DEFAULT_STREAM_BATCH};
