//! Shard-parallel lexicographic direct access over a
//! [`ShardedSnapshot`].
//!
//! The lexicographic order sorts answers by the completed order's first
//! variable before anything else, and a sharded snapshot partitions the
//! code space of exactly that leading dimension. So the answers of
//! shard `s` — the answers whose head-of-order code falls in
//! [`ShardedSnapshot::shard_range`]`(s)` — occupy one **contiguous
//! global rank interval**: per-shard structures built independently
//! compose into the global structure by nothing more than an offset
//! table. [`ShardedLexAccess`] is that composition: it routes every
//! rank (and rank interval, and batch run) to the single shard that
//! owns it, adds the shard's base offset, and otherwise delegates to
//! an ordinary [`LexDirectAccess`] with the identical ⟨quasilinear
//! preprocessing, logarithmic access⟩ guarantee.
//!
//! Builds fan out one worker per shard through
//! [`rda_db::parallel`] with a forced width (a 1-core host still
//! exercises the exact partition/route code paths — the regime the
//! forced-shard differential oracle in `tests/shard.rs` pins down).
//!
//! Sharding degenerates to a single-shard build — bit-identical to
//! [`LexDirectAccess::build_on`] — whenever the partitioning argument
//! above does not apply: one shard requested, functional dependencies
//! present (FD-derived columns may depend on rows outside the shard's
//! range), self-joins (per-relation overrides cannot distinguish the
//! occurrences), or a boolean/empty completed order (nothing to route
//! by).

use crate::budget::BuildBudget;
use crate::error::BuildError;
use crate::fault;
use crate::instance::normalize_query;
use crate::lexda::{prepare_layers, validate_lex, LexDirectAccess};
use crate::window::{clamp_range, WindowBuf};
use rda_db::parallel;
use rda_db::{Dictionary, EncodedRelation, ShardedSnapshot, Snapshot, Tuple};
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::connex::complete_order;
use rda_query::fd::FdSet;
use rda_query::query::Cq;
use rda_query::VarId;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Lexicographic direct access assembled from per-shard
/// [`LexDirectAccess`] structures over a [`ShardedSnapshot`] — same
/// answer order, same guarantees, shard-parallel preprocessing. See
/// the [module docs](self) for why per-shard ranks concatenate.
#[derive(Debug, Clone)]
pub struct ShardedLexAccess {
    /// One structure per shard, in shard (= leading code range) order.
    shards: Vec<LexDirectAccess>,
    /// `offsets[s]` is the global rank of shard `s`'s first answer;
    /// `offsets[shards.len()]` is the total. Non-decreasing.
    offsets: Vec<u64>,
    /// The base snapshot every per-shard view derives from.
    base: Arc<Snapshot>,
    total: u64,
}

impl LexDirectAccess {
    /// [`LexDirectAccess::build_on`], fanned out shard-parallel over a
    /// sharded snapshot: classify once, then build one independent
    /// structure per shard on a restricted view of the base snapshot
    /// (atoms containing the completed order's head variable filtered
    /// to the shard's leading-code range), and merge the per-shard rank
    /// directories into a global offset table.
    ///
    /// The returned structure answers every operation of the unsharded
    /// build, bit-for-bit equal; `tests/shard.rs` holds the two
    /// differentially equal across shard counts, backends, and
    /// [`ShardedSnapshot::freeze_delta`] generations.
    ///
    /// `budget` is enforced **per shard** (each shard meters its own
    /// arena); callers wanting a strict global cap should use the
    /// unsharded builder.
    pub fn build_on_sharded(
        q: &Cq,
        sharded: &ShardedSnapshot,
        lex: &[VarId],
        fds: &FdSet,
        budget: BuildBudget,
    ) -> Result<ShardedLexAccess, BuildError> {
        fault::trip(fault::SITE_LEXDA_BUILD)
            .map_err(|f| BuildError::FaultInjected { site: f.site })?;
        validate_lex(q, lex)?;
        let base = sharded.base();
        // Route only when the contiguity argument holds (module docs);
        // otherwise a single-shard build is the correct degeneration.
        let route = if sharded.shards() <= 1 || !fds.is_empty() || !q.is_self_join_free() {
            None
        } else {
            match classify(q, fds, &Problem::DirectAccessLex(lex.to_vec())) {
                Verdict::Tractable { .. } => {}
                v => return Err(BuildError::NotTractable(v)),
            }
            complete_order(&normalize_query(q), lex).and_then(|order| order.first().copied())
        };
        let Some(route) = route else {
            let prep = prepare_layers(q, base, lex, fds)?;
            let da = LexDirectAccess::from_prep(prep, Arc::clone(base), budget)?;
            return Ok(ShardedLexAccess::single(da, Arc::clone(base)));
        };
        // First position of the route variable in each atom that
        // contains it. (Filtering on the first occurrence is exact:
        // normalized encodings only keep rows whose repeated positions
        // agree.) Self-join-free, so relation names key atoms.
        let mut route_pos: Vec<(&str, usize)> = Vec::new();
        for atom in q.atoms() {
            let enc = base
                .encoded(&atom.relation)
                .ok_or_else(|| BuildError::MissingRelation(atom.relation.clone()))?;
            if enc.arity() != atom.terms.len() {
                return Err(BuildError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: atom.terms.len(),
                    found: enc.arity(),
                });
            }
            if let Some(p) = atom.terms.iter().position(|&t| t == route) {
                route_pos.push((atom.relation.as_str(), p));
            }
        }
        if route_pos.is_empty() {
            // A free variable outside every atom — let the ordinary
            // pipeline produce its usual error.
            let prep = prepare_layers(q, base, lex, fds)?;
            let da = LexDirectAccess::from_prep(prep, Arc::clone(base), budget)?;
            return Ok(ShardedLexAccess::single(da, Arc::clone(base)));
        }
        let n = sharded.shards();
        let built: Vec<Result<LexDirectAccess, BuildError>> =
            parallel::map_indexed_with(n, n, |s| {
                let (lo, hi) = sharded.shard_range(s);
                let mut overrides: BTreeMap<String, Arc<EncodedRelation>> = BTreeMap::new();
                for &(name, p) in &route_pos {
                    let part = if p == 0 {
                        // Leading position: the pre-split shard part is
                        // exactly this filter, already materialized.
                        Arc::clone(sharded.part(name, s).expect("partitioned at freeze"))
                    } else {
                        let enc = base.encoded(name).expect("validated above");
                        Arc::new(enc.filter_col_range(p, lo, hi))
                    };
                    overrides.insert(name.to_string(), part);
                }
                let view = base.with_encoding_overrides(overrides);
                let prep = prepare_layers(q, &view, lex, fds)?;
                LexDirectAccess::from_prep(prep, view, budget)
            });
        let mut shards = Vec::with_capacity(n);
        for r in built {
            shards.push(r?);
        }
        ShardedLexAccess::assemble(shards, Arc::clone(base))
    }
}

impl ShardedLexAccess {
    /// Wrap a single unsharded structure (the degenerate composition).
    fn single(da: LexDirectAccess, base: Arc<Snapshot>) -> ShardedLexAccess {
        let total = da.len();
        ShardedLexAccess {
            shards: vec![da],
            offsets: vec![0, total],
            base,
            total,
        }
    }

    /// Compose per-shard structures (in shard order) into the global
    /// rank space via checked prefix sums.
    fn assemble(
        shards: Vec<LexDirectAccess>,
        base: Arc<Snapshot>,
    ) -> Result<ShardedLexAccess, BuildError> {
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut total = 0u64;
        offsets.push(0);
        for da in &shards {
            total = total
                .checked_add(da.len())
                .ok_or(BuildError::CountOverflow)?;
            offsets.push(total);
        }
        Ok(ShardedLexAccess {
            shards,
            offsets,
            base,
            total,
        })
    }

    /// Number of answers (`|Q(I)|`), summed over shards.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the query has no answers.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of shards the structure routes over (1 when the build
    /// degenerated to a single shard).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global rank→shard routing table: `offsets()[s]` is shard
    /// `s`'s first global rank, and the final entry is [`Self::len`].
    pub fn shard_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The complete internal order (identical across shards — the
    /// completion is a function of the query alone).
    pub fn internal_order(&self) -> &[VarId] {
        self.shards[0].internal_order()
    }

    /// The order-preserving dictionary — the base snapshot's, shared by
    /// every shard view.
    pub fn dictionary(&self) -> &Dictionary {
        self.base.dict()
    }

    /// The base snapshot the sharded build derives from. Per-shard
    /// views share its uid, generation, and ancestry, so snapshot
    /// lineage (serve cursors included) is oblivious to sharding.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.base
    }

    /// Width of the emitted answer tuples (the head arity).
    fn head_arity(&self) -> usize {
        self.shards[0].head_arity()
    }

    /// The shard owning global rank `k` (`k < len()` required): the
    /// unique `s` with `offsets[s] ≤ k < offsets[s+1]` and a non-empty
    /// interval. Empty shards are skipped by construction.
    fn shard_of(&self, k: u64) -> usize {
        self.offsets.partition_point(|&o| o <= k) - 1
    }

    /// The answer at global rank `k` — routed to its owning shard,
    /// accessed at `k - offsets[s]`. O(log n), same as unsharded.
    pub fn access(&self, k: u64) -> Option<Tuple> {
        if k >= self.total {
            return None;
        }
        let s = self.shard_of(k);
        self.shards[s].access(k - self.offsets[s])
    }

    /// Allocation-free [`Self::access`]: fill `out` with the answer's
    /// values and return `true`, or clear it and return `false` when
    /// `k` is out of bounds.
    pub fn access_into(&self, k: u64, out: &mut Vec<rda_db::Value>) -> bool {
        if k >= self.total {
            out.clear();
            return false;
        }
        let s = self.shard_of(k);
        self.shards[s].access_into(k - self.offsets[s], out)
    }

    /// The global rank of `answer`, or `None` when it is not an answer.
    /// Routes by scanning shards (each shard rejects tuples outside its
    /// leading-code range in one probe).
    pub fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        for (s, da) in self.shards.iter().enumerate() {
            if let Some(local) = da.inverted_access(answer) {
                return Some(self.offsets[s] + local);
            }
        }
        None
    }

    /// The number of answers strictly before `answer` in the global
    /// order, whether or not `answer` is an answer: the first shard
    /// whose lower bound lands strictly inside it owns the boundary;
    /// every earlier shard contributes its full length.
    pub fn rank_of_lower_bound(&self, answer: &Tuple) -> Option<u64> {
        let mut acc = 0u64;
        for da in &self.shards {
            let r = da.rank_of_lower_bound(answer)?;
            if r < da.len() {
                return Some(acc + r);
            }
            acc += da.len();
        }
        Some(acc)
    }

    /// The first answer `≥ answer` with its global rank, or `None` when
    /// every answer precedes `answer`.
    pub fn next_at_or_after(&self, answer: &Tuple) -> Option<(u64, Tuple)> {
        let rank = self.rank_of_lower_bound(answer)?;
        self.access(rank).map(|t| (rank, t))
    }

    /// The answers at global ranks `range` (clamped), in order, into
    /// `out`. A range inside one shard delegates whole; a spanning
    /// range stitches consecutive per-shard windows.
    pub fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        let (lo, hi) = clamp_range(&range, self.total);
        if lo >= hi {
            out.begin(self.head_arity());
            return 0;
        }
        let first = self.shard_of(lo);
        if hi <= self.offsets[first + 1] {
            return self.shards[first]
                .access_range_into(lo - self.offsets[first]..hi - self.offsets[first], out);
        }
        out.begin(self.head_arity());
        let mut scratch = WindowBuf::new();
        let mut written = 0u64;
        for s in first..self.shards.len() {
            let (slo, shi) = (self.offsets[s], self.offsets[s + 1]);
            if slo >= hi {
                break;
            }
            let l = lo.max(slo) - slo;
            let h = hi.min(shi) - slo;
            if l >= h {
                continue;
            }
            written += self.shards[s].access_range_into(l..h, &mut scratch);
            for row in scratch.rows() {
                out.push_row(row);
            }
        }
        written
    }

    /// The answers at global ranks `range` (clamped), in order.
    pub fn access_range(&self, range: Range<u64>) -> Vec<Tuple> {
        let mut out = WindowBuf::new();
        self.access_range_into(range, &mut out);
        out.to_tuples()
    }

    /// Batched access in input order, out-of-range ranks skipped —
    /// maximal same-shard runs are translated to local ranks and served
    /// by one shared per-shard descent each.
    pub fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        if self.shards.len() == 1 {
            return self.shards[0].access_batch_into(ranks, out);
        }
        out.begin(self.head_arity());
        let mut scratch = WindowBuf::new();
        let mut local: Vec<u64> = Vec::new();
        let mut written = 0u64;
        let mut i = 0usize;
        while i < ranks.len() {
            if ranks[i] >= self.total {
                i += 1;
                continue;
            }
            let s = self.shard_of(ranks[i]);
            let (slo, shi) = (self.offsets[s], self.offsets[s + 1]);
            local.clear();
            while i < ranks.len() {
                let k = ranks[i];
                if k >= self.total {
                    // Skipped ranks do not break a run.
                    i += 1;
                    continue;
                }
                if k < slo || k >= shi {
                    break;
                }
                local.push(k - slo);
                i += 1;
            }
            self.shards[s].access_batch_into(&local, &mut scratch);
            for row in scratch.rows() {
                out.push_row(row);
            }
            written += local.len() as u64;
        }
        written
    }

    /// Batched access in input order, out-of-range ranks skipped.
    pub fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        let mut out = WindowBuf::new();
        self.access_batch_into(ranks, &mut out);
        out.to_tuples()
    }

    /// Iterate the answers at global ranks `range` (clamped), in order
    /// — per-shard constant-delay enumerations chained end to end.
    pub fn iter_range(&self, range: Range<u64>) -> impl Iterator<Item = Tuple> + '_ {
        let (lo, hi) = clamp_range(&range, self.total);
        (0..self.shards.len()).flat_map(move |s| {
            let slo = self.offsets[s];
            let l = lo.max(slo) - slo;
            let h = hi.max(slo) - slo;
            self.shards[s].iter_range(l..h)
        })
    }

    /// Iterate all answers in global order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.iter_range(0..self.total)
    }
}
