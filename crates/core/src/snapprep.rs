//! Snapshot-side (code-space) instance preparation.
//!
//! The value-level preparation pipeline in [`crate::instance`] and
//! [`crate::fdtransform`] — normalize, check FDs, FD-extend, reduce to
//! full — re-reads and clones [`rda_db::Relation`]s on every build.
//! This module is its dictionary-encoded twin: every step runs on the
//! columnar `u32` relations a [`Snapshot`] encoded **once** at freeze
//! time, borrowing them through [`Cow`] so a step that changes nothing
//! (the common case: no repeated variables, no FDs, nothing dangling)
//! costs no copy at all. Because the snapshot's dictionary is
//! order-preserving, each step produces exactly the relations its
//! value-level twin would, just in code space.
//!
//! The contract is observable from the outside: relations are encoded
//! at freeze time and **never again**, however many structures are
//! built over the snapshot.
//!
//! ```
//! use rda_core::{DirectAccess, Engine, OrderSpec, Policy};
//! use rda_db::{relation_encode_count, Database};
//! use rda_query::{parser::parse, FdSet};
//!
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![2, 5]]);
//! let engine = Engine::new(db.freeze()); // both relations encoded here …
//! let encoded_at_freeze = relation_encode_count();
//! let plan = engine
//!     .prepare(&q, OrderSpec::lex(&q, &["x", "y", "z"]), &FdSet::empty(), Policy::Reject)
//!     .unwrap();
//! assert_eq!(plan.len(), 3);
//! // … and the whole build pipeline re-encoded nothing.
//! assert_eq!(relation_encode_count(), encoded_at_freeze);
//! ```

use crate::error::BuildError;
use crate::instance::{full_reduce, normalize_query, positions_of, sorted_vars};
use rda_db::{EncodedRelation, Snapshot};
use rda_query::connex::{ext_connex_tree, ExtConnexTree};
use rda_query::fd::{ExtensionStep, FdExtension, FdSet};
use rda_query::query::{Atom, Cq};
use rda_query::{VarId, VarSet};
use std::borrow::Cow;
use std::collections::HashMap;

/// A normalized atom's relation: borrowed from the snapshot when
/// normalization is the identity for it, owned when filtering or
/// extension produced new rows.
pub(crate) type EncRel<'a> = Cow<'a, EncodedRelation>;

/// Code-keyed FD derivation: `lookup[code(u)] = code(v)` for the FD
/// `u → v`, under the snapshot's shared dictionary. Probing is one
/// integer-keyed map hit, allocation-free.
#[derive(Debug, Clone)]
pub(crate) struct Derivation {
    pub(crate) var: VarId,
    pub(crate) from: VarId,
    pub(crate) lookup: HashMap<u32, u32>,
}

/// The code-space half of [`crate::instance::normalize_instance`]:
/// validate the query against the snapshot and produce, per normalized
/// atom, its encoded relation. Self-join occurrences *borrow the same
/// snapshot relation* (the value-level path had to clone them apart);
/// atoms with repeated variables get a filtered, projected copy.
pub(crate) fn normalize_encoded<'a>(
    q: &Cq,
    snap: &'a Snapshot,
) -> Result<(Cq, Vec<EncRel<'a>>), BuildError> {
    let nq = normalize_query(q);
    let mut rels: Vec<EncRel<'a>> = Vec::with_capacity(q.atoms().len());
    for (atom, natom) in q.atoms().iter().zip(nq.atoms()) {
        let enc = snap
            .encoded(&atom.relation)
            .ok_or_else(|| BuildError::MissingRelation(atom.relation.clone()))?;
        if enc.arity() != atom.terms.len() {
            return Err(BuildError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: atom.terms.len(),
                found: enc.arity(),
            });
        }
        if natom.terms.len() == atom.terms.len() {
            // No repeated variables; the snapshot's normalized encoding
            // is exactly the normalized relation.
            rels.push(Cow::Borrowed(enc));
            continue;
        }
        // Repeated variables: keep rows whose repeated positions agree
        // (first occurrence is the witness), drop duplicate columns.
        let keep_positions: Vec<usize> = natom
            .terms
            .iter()
            .map(|t| atom.terms.iter().position(|x| x == t).expect("present"))
            .collect();
        let firsts: Vec<usize> = atom
            .terms
            .iter()
            .map(|t| atom.terms.iter().position(|x| x == t).expect("present"))
            .collect();
        let mut out = EncodedRelation::new(keep_positions.len());
        let mut row_buf: Vec<u32> = Vec::with_capacity(keep_positions.len());
        for row in 0..enc.len() {
            if (0..atom.terms.len()).all(|p| enc.code(row, p) == enc.code(row, firsts[p])) {
                row_buf.clear();
                row_buf.extend(keep_positions.iter().map(|&p| enc.code(row, p)));
                out.push_row(&row_buf);
            }
        }
        out.normalize();
        rels.push(Cow::Owned(out));
    }
    Ok((nq, rels))
}

/// Code-space twin of [`crate::fdtransform::check_fds`]: verify every
/// declared FD against the encoded relations. Code equality is value
/// equality, so the check is exact.
pub(crate) fn check_fds_encoded(
    nq: &Cq,
    rels: &[EncRel<'_>],
    fds: &FdSet,
) -> Result<(), BuildError> {
    for fd in fds.iter() {
        let (ai, atom) = nq
            .atoms()
            .iter()
            .enumerate()
            .find(|(_, a)| a.relation == fd.relation)
            .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
        let lp = atom.position_of(fd.lhs).expect("FD lhs occurs in atom");
        let rp = atom.position_of(fd.rhs).expect("FD rhs occurs in atom");
        let rel = &rels[ai];
        let mut seen: HashMap<u32, u32> = HashMap::with_capacity(rel.len());
        for row in 0..rel.len() {
            match seen.entry(rel.code(row, lp)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rel.code(row, rp));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != rel.code(row, rp) {
                        return Err(BuildError::FdViolated(fd.clone()));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Code-space twin of [`crate::fdtransform::extend_instance`]: replay
/// the FD-extension steps on the encoded relations, widening atoms by
/// their implied columns and dropping dangling rows. Atoms no step
/// touches keep their borrowed snapshot relation.
pub(crate) fn extend_instance_encoded<'a>(
    ext: &FdExtension,
    nq: &Cq,
    mut rels: Vec<EncRel<'a>>,
) -> Result<Vec<EncRel<'a>>, BuildError> {
    let index_of: HashMap<&str, usize> = nq
        .atoms()
        .iter()
        .enumerate()
        .map(|(i, a)| (a.relation.as_str(), i))
        .collect();
    // Evolving schemas, growing exactly as fd_extension grew them.
    let mut schema: Vec<Vec<VarId>> = nq.atoms().iter().map(|a| a.terms.clone()).collect();

    for step in &ext.steps {
        let ExtensionStep::ExtendAtom { atom, added, via } = step else {
            continue; // PromoteVar has no instance effect.
        };
        // The `lhs code → rhs code` map of the FD, from its relation's
        // current contents.
        let vi = *index_of
            .get(via.relation.as_str())
            .ok_or_else(|| BuildError::MissingRelation(via.relation.clone()))?;
        let vlp = schema[vi]
            .iter()
            .position(|&t| t == via.lhs)
            .expect("FD lhs in relation schema");
        let vrp = schema[vi]
            .iter()
            .position(|&t| t == via.rhs)
            .expect("FD rhs in relation schema");
        let mut lookup: HashMap<u32, u32> = HashMap::with_capacity(rels[vi].len());
        for row in 0..rels[vi].len() {
            if let Some(prev) = lookup.insert(rels[vi].code(row, vlp), rels[vi].code(row, vrp)) {
                if prev != rels[vi].code(row, vrp) {
                    return Err(BuildError::FdViolated(via.clone()));
                }
            }
        }

        let ti = *index_of
            .get(atom.as_str())
            .expect("extension step names a known atom");
        let lp = schema[ti]
            .iter()
            .position(|&t| t == via.lhs)
            .expect("target atom contains the FD's lhs");
        schema[ti].push(*added);
        let src = &rels[ti];
        let mut out = EncodedRelation::new(src.arity() + 1);
        let mut row_buf: Vec<u32> = Vec::with_capacity(src.arity() + 1);
        for row in 0..src.len() {
            if let Some(&rhs) = lookup.get(&src.code(row, lp)) {
                row_buf.clear();
                row_buf.extend((0..src.arity()).map(|p| src.code(row, p)));
                row_buf.push(rhs);
                out.push_row(&row_buf);
            }
            // else: dangling row, dropped.
        }
        out.normalize();
        rels[ti] = Cow::Owned(out);
    }
    debug_assert!(
        ext.query
            .atoms()
            .iter()
            .zip(&schema)
            .all(|(a, s)| &a.terms == s),
        "replayed schemas match the extended query"
    );
    Ok(rels)
}

/// For every promoted variable, the code-keyed derivation of its value
/// from an earlier variable (needed by inverted access under FDs) —
/// code-space twin of [`crate::lexda::build_derivations`].
pub(crate) fn build_derivations_encoded(
    ext: &FdExtension,
    rels: &[EncRel<'_>],
) -> Result<Vec<Derivation>, BuildError> {
    let mut known: VarSet = ext.original.free_set();
    let mut out = Vec::new();
    for step in &ext.steps {
        let ExtensionStep::PromoteVar { var } = step else {
            continue;
        };
        let fd = ext
            .fds
            .iter()
            .find(|fd| fd.rhs == *var && known.contains(fd.lhs))
            .expect("promoted variables are implied by an earlier free variable");
        // The FD's relation already carries both columns in the extended
        // instance (schemas only grow).
        let (ai, atom) = ext
            .query
            .atoms()
            .iter()
            .enumerate()
            .find(|(_, a)| a.relation == fd.relation)
            .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
        let lp = atom.position_of(fd.lhs).expect("lhs in atom");
        let rp = atom.position_of(fd.rhs).expect("rhs in atom");
        let rel = &rels[ai];
        let mut lookup = HashMap::with_capacity(rel.len());
        for row in 0..rel.len() {
            lookup.insert(rel.code(row, lp), rel.code(row, rp));
        }
        out.push(Derivation {
            var: *var,
            from: fd.lhs,
            lookup,
        });
        known = known.with(*var);
    }
    Ok(out)
}

/// Result of the code-space free-connex-to-full reduction: the full
/// query `Q'` with one encoded relation per atom, positionally aligned
/// with `query.atoms()`.
pub(crate) struct EncodedReduction {
    /// The full CQ `Q'` (atoms `N0, N1, …` over exactly `free(Q)`).
    pub(crate) query: Cq,
    /// One fully reduced encoded relation per atom of `query`.
    pub(crate) rels: Vec<EncodedRelation>,
    /// `true` when the semijoin reduction already proves `Q(I) = ∅`.
    pub(crate) known_empty: bool,
}

/// Code-space twin of [`crate::instance::reduce_to_full`]
/// (Proposition 2.3 / Lemma 3.10): reduce a free-connex `q` (with
/// encoded relations `rels`, positionally per atom) to a full acyclic
/// query over `free(q)` with the same answers. Returns `None` if `q` is
/// not free-connex.
pub(crate) fn reduce_to_full_encoded(q: &Cq, rels: &[EncRel<'_>]) -> Option<EncodedReduction> {
    let free = q.free_set();
    let ext: ExtConnexTree = ext_connex_tree(&q.hypergraph(), free)?;

    // Materialize one relation per tree node by projecting its source
    // atom, then run the full reducer over the whole ext tree.
    let n = ext.tree.len();
    let mut node_vars: Vec<Vec<VarId>> = Vec::with_capacity(n);
    let mut node_rels: Vec<EncodedRelation> = Vec::with_capacity(n);
    for i in 0..n {
        let vars = sorted_vars(ext.tree.node(i).vars);
        let src = ext.source_atom(i);
        let atom = &q.atoms()[src];
        node_rels.push(rels[src].project(&positions_of(&atom.terms, &vars)));
        node_vars.push(vars);
    }
    full_reduce(&ext.tree, &node_vars, &mut node_rels);

    // Emptiness propagates through the full reducer.
    let known_empty = node_rels.iter().any(EncodedRelation::is_empty);

    // Q' := the marked subtree's non-empty-variable nodes.
    let mut atoms = Vec::new();
    let mut out_rels = Vec::new();
    for &i in &ext.marked {
        if node_vars[i].is_empty() {
            continue;
        }
        atoms.push(Atom {
            relation: format!("N{i}"),
            terms: node_vars[i].clone(),
        });
        // Move the node relation out (marked indices are distinct and
        // `node_rels` is dead after this loop). It is already in set
        // semantics: `project` normalized it, and the full reducer only
        // drops rows via ascending-index retention, which preserves
        // both sortedness and distinctness.
        let rel = std::mem::replace(&mut node_rels[i], EncodedRelation::new(0));
        out_rels.push(rel);
    }
    let names: Vec<String> = (0..q.var_count())
        .map(|i| q.var_name(VarId(i as u32)).to_string())
        .collect();
    let query = Cq::from_parts(q.name().to_string(), q.free().to_vec(), atoms, names);
    Some(EncodedReduction {
        query,
        rels: out_rels,
        known_empty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::{tup, Database, Tuple};
    use rda_query::fd::fd_extension;
    use rda_query::parser::parse;

    fn decoded(rel: &EncodedRelation, snap: &Snapshot) -> Vec<Tuple> {
        (0..rel.len())
            .map(|r| rel.decode_row(r, snap.dict()))
            .collect()
    }

    #[test]
    fn normalize_shares_self_join_relations() {
        let q = parse("Q(x, y, z) :- R(x, y), R(y, z)").unwrap();
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2], vec![2, 3]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        assert!(nq.is_self_join_free());
        assert!(matches!(rels[0], Cow::Borrowed(_)));
        assert!(matches!(rels[1], Cow::Borrowed(_)));
        assert!(std::ptr::eq(rels[0].as_ref(), rels[1].as_ref()));
    }

    #[test]
    fn normalize_resolves_repeated_variables_in_code_space() {
        let q = parse("Q(x) :- R(x, x)").unwrap();
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 1], vec![1, 2], vec![3, 3]])
            .freeze();
        let (_, rels) = normalize_encoded(&q, &snap).unwrap();
        assert_eq!(decoded(&rels[0], &snap), vec![tup![1], tup![3]]);
    }

    #[test]
    fn normalize_validates_missing_and_arity() {
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2]])
            .freeze();
        let q = parse("Q(x) :- T(x)").unwrap();
        assert!(matches!(
            normalize_encoded(&q, &snap),
            Err(BuildError::MissingRelation(r)) if r == "T"
        ));
        let q = parse("Q(x) :- R(x)").unwrap();
        assert!(matches!(
            normalize_encoded(&q, &snap),
            Err(BuildError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn fd_check_and_extension_match_value_level() {
        // Example 8.3: Q(x,z) :- R(x,y), S(y,z) with S: y → z.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20], vec![3, 99]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 8]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        check_fds_encoded(&nq, &rels, &fds).unwrap();
        let ext = fd_extension(&nq, &fds);
        let rels = extend_instance_encoded(&ext, &nq, rels).unwrap();
        // R gains a z column; (3, 99) is dangling and dropped.
        assert_eq!(rels[0].arity(), 3);
        assert_eq!(
            decoded(&rels[0], &snap),
            vec![tup![1, 10, 7], tup![2, 20, 8]]
        );
        // S was not extended: still the borrowed snapshot relation.
        assert!(matches!(rels[1], Cow::Borrowed(_)));
        // No variable was promoted here (z was already free).
        assert!(build_derivations_encoded(&ext, &rels).unwrap().is_empty());
    }

    #[test]
    fn promoted_variables_get_code_keyed_derivations() {
        // Q(x, z) :- R(x, y), S(y, z) with R: x → y promotes y into
        // free(Q⁺); inverted access must derive y's code from x's.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("R", "x", "y")]);
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 8]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        check_fds_encoded(&nq, &rels, &fds).unwrap();
        let ext = fd_extension(&nq, &fds);
        let rels = extend_instance_encoded(&ext, &nq, rels).unwrap();
        let ders = build_derivations_encoded(&ext, &rels).unwrap();
        let y = q.var("y").unwrap();
        let d = ders.iter().find(|d| d.var == y).expect("y is promoted");
        assert_eq!(d.from, q.var("x").unwrap());
        let dict = snap.dict();
        let (c1, c10) = (
            dict.code(&1.into()).unwrap(),
            dict.code(&10.into()).unwrap(),
        );
        assert_eq!(d.lookup.get(&c1), Some(&c10));
    }

    #[test]
    fn fd_violation_detected_in_code_space() {
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![10, 8]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        assert!(matches!(
            check_fds_encoded(&nq, &rels, &fds),
            Err(BuildError::FdViolated(_))
        ));
    }

    #[test]
    fn reduction_matches_value_level_reduction() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2], vec![9, 9]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        let red = reduce_to_full_encoded(&nq, &rels).unwrap();
        assert!(!red.known_empty);
        assert!(red.query.is_full());
        // Value-level comparison via the existing reducer.
        let (vq, vdb) = crate::instance::normalize_instance(&q, snap.database()).unwrap();
        let vred = crate::instance::reduce_to_full(&vq, &vdb).unwrap();
        assert_eq!(red.query.atoms().len(), vred.query.atoms().len());
        for (atom, enc) in red.query.atoms().iter().zip(&red.rels) {
            let vrel = vred.db.get(&atom.relation).unwrap();
            let mut expect: Vec<Tuple> = vrel.tuples().to_vec();
            expect.sort();
            assert_eq!(decoded(enc, &snap), expect, "atom {}", atom.relation);
        }
    }

    #[test]
    fn reduction_detects_emptiness_and_non_free_connex() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let snap = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 100]])
            .with_i64_rows("S", 2, vec![vec![5, 3]])
            .freeze();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        assert!(reduce_to_full_encoded(&nq, &rels).unwrap().known_empty);

        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let (nq, rels) = normalize_encoded(&q, &snap).unwrap();
        assert!(reduce_to_full_encoded(&nq, &rels).is_none());
    }
}
