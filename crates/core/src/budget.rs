//! Build budgets: bounded resource envelopes for structure builds.
//!
//! A hostile (or merely unlucky) query can ask the engine to build a
//! direct-access structure whose preprocessing output is enormous —
//! the layered-DP arenas of [`lexda`](crate::lexda) and the
//! weight-sorted answer array of [`sumda`](crate::sumda) are both
//! `O(|answers|)`-sized, and the answer count can be polynomially
//! larger than the input. A [`BuildBudget`] caps what a single build
//! may allocate; the build kernels charge a [`BudgetMeter`] at their
//! allocation sites and abort with the typed
//! [`BuildError::BudgetExceeded`] instead of exhausting process
//! memory. The partially-built structure is dropped; nothing is
//! cached, and the engine's shared state is untouched.
//!
//! Budgets are a *containment* mechanism, not an exact accountant:
//! meters charge the dominant, answer-proportional allocations
//! (arena entries, rank directories, answer columns) and ignore
//! O(input) bookkeeping. The default budget is unlimited.

use crate::error::BuildError;

/// Resource caps for one structure build. `None` means unlimited.
///
/// Set process-wide on an [`Engine`](crate::Engine) via
/// [`Engine::set_build_budget`](crate::Engine::set_build_budget), or
/// per-build through the `*_budgeted` constructors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildBudget {
    /// Cap on bytes of answer-proportional arena/column storage.
    pub max_arena_bytes: Option<u64>,
    /// Cap on dynamic-programming entries (lexda arena entries, sumda
    /// answer rows).
    pub max_dp_entries: Option<u64>,
}

impl BuildBudget {
    /// The unlimited budget (both caps off).
    pub const UNLIMITED: BuildBudget = BuildBudget {
        max_arena_bytes: None,
        max_dp_entries: None,
    };

    /// A budget capping both bytes and entries.
    pub fn capped(max_arena_bytes: u64, max_dp_entries: u64) -> Self {
        BuildBudget {
            max_arena_bytes: Some(max_arena_bytes),
            max_dp_entries: Some(max_dp_entries),
        }
    }

    /// `true` when neither cap is set (charging can be skipped).
    pub fn is_unlimited(&self) -> bool {
        self.max_arena_bytes.is_none() && self.max_dp_entries.is_none()
    }

    /// Start metering one build against this budget.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            budget: *self,
            bytes: 0,
            entries: 0,
        }
    }
}

/// Running consumption of one build against a [`BuildBudget`].
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: BuildBudget,
    bytes: u64,
    entries: u64,
}

impl BudgetMeter {
    /// A meter that never trips.
    pub fn unlimited() -> Self {
        BuildBudget::UNLIMITED.meter()
    }

    /// Charge `bytes` of arena storage and `entries` DP entries;
    /// errors with [`BuildError::BudgetExceeded`] on the first cap
    /// crossed.
    #[inline]
    pub fn charge(&mut self, bytes: u64, entries: u64) -> Result<(), BuildError> {
        if self.budget.is_unlimited() {
            return Ok(());
        }
        self.bytes = self.bytes.saturating_add(bytes);
        self.entries = self.entries.saturating_add(entries);
        if let Some(cap) = self.budget.max_dp_entries {
            if self.entries > cap {
                return Err(BuildError::BudgetExceeded {
                    resource: "dp_entries",
                    used: self.entries,
                    limit: cap,
                });
            }
        }
        if let Some(cap) = self.budget.max_arena_bytes {
            if self.bytes > cap {
                return Err(BuildError::BudgetExceeded {
                    resource: "arena_bytes",
                    used: self.bytes,
                    limit: cap,
                });
            }
        }
        Ok(())
    }

    /// Bytes charged so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Entries charged so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::unlimited();
        for _ in 0..1000 {
            m.charge(u64::MAX / 2, u64::MAX / 2).unwrap();
        }
        // Unlimited meters skip accounting entirely.
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn entry_cap_trips_first_crossing() {
        let mut m = BuildBudget::capped(1 << 30, 10).meter();
        m.charge(16, 8).unwrap();
        m.charge(16, 2).unwrap(); // exactly at the cap: fine
        let err = m.charge(16, 1).unwrap_err();
        match err {
            BuildError::BudgetExceeded {
                resource,
                used,
                limit,
            } => {
                assert_eq!(resource, "dp_entries");
                assert_eq!(used, 11);
                assert_eq!(limit, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn byte_cap_trips_and_saturates() {
        let mut m = BuildBudget {
            max_arena_bytes: Some(100),
            max_dp_entries: None,
        }
        .meter();
        m.charge(100, 5).unwrap();
        assert!(m.charge(u64::MAX, 0).is_err(), "saturating add still trips");
    }
}
