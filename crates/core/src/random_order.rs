//! Random-order enumeration and quantile utilities on top of direct
//! access (Section 1 and Section 2.5's applications; Carmeli et
//! al. \[15\]).
//!
//! A direct-access structure turns the answer set into a virtual sorted
//! array, which immediately yields:
//!
//! * **uniform random-order enumeration** ([`RandomOrderEnumerator`]):
//!   a lazily materialized Fisher–Yates permutation over indices gives a
//!   provably uniform random permutation of the answers with O(log n)
//!   delay and O(emitted) memory — sampling *without replacement*;
//! * **quantiles** ([`Quantiles`]): the φ-quantile is one access;
//! * **range counting/reporting** between two (possibly non-answer)
//!   tuples via the rank machinery of Remark 3.

use crate::lexda::LexDirectAccess;
use rand::Rng;
use rda_db::Tuple;
use std::collections::HashMap;

/// Uniform random-order enumeration without replacement.
///
/// Keeps a sparse Fisher–Yates state: only the O(#emitted) swapped
/// positions are stored, so streaming a short prefix of a huge answer
/// set stays cheap — the property that makes prefixes statistically
/// valid samples.
pub struct RandomOrderEnumerator<'a, R: Rng> {
    da: &'a LexDirectAccess,
    rng: R,
    swaps: HashMap<u64, u64>,
    next: u64,
}

impl<'a, R: Rng> RandomOrderEnumerator<'a, R> {
    /// Start a fresh uniform permutation over `da`'s answers.
    pub fn new(da: &'a LexDirectAccess, rng: R) -> Self {
        RandomOrderEnumerator {
            da,
            rng,
            swaps: HashMap::new(),
            next: 0,
        }
    }

    /// Answers left to emit.
    pub fn remaining(&self) -> u64 {
        self.da.len() - self.next
    }

    fn slot(&self, i: u64) -> u64 {
        *self.swaps.get(&i).unwrap_or(&i)
    }
}

impl<R: Rng> Iterator for RandomOrderEnumerator<'_, R> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let n = self.da.len();
        if self.next >= n {
            return None;
        }
        // Fisher–Yates step i: swap position i with uniform j in [i, n).
        let i = self.next;
        let j = self.rng.random_range(i..n);
        let vi = self.slot(i);
        let vj = self.slot(j);
        self.swaps.insert(j, vi);
        self.swaps.remove(&i);
        self.next += 1;
        Some(self.da.access(vj).expect("permutation index in range"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining() as usize;
        (r, Some(r))
    }
}

/// Quantile and range statistics over the virtual sorted answer array.
pub trait Quantiles {
    /// The φ-quantile answer, `0.0 ≤ phi ≤ 1.0` (`phi = 0.5` is the
    /// median). `None` when there are no answers.
    fn quantile(&self, phi: f64) -> Option<Tuple>;

    /// The median answer.
    fn median(&self) -> Option<Tuple> {
        self.quantile(0.5)
    }

    /// Number of answers `t` with `lo ≤ t < hi` in the structure's
    /// order. The bounds need not be answers themselves (Remark 3's
    /// rank machinery). `None` if a bound cannot be ranked (e.g. an
    /// FD-underdetermined tuple).
    fn range_count(&self, lo: &Tuple, hi: &Tuple) -> Option<u64>;

    /// The answers in `[lo, hi)`, in order.
    fn range(&self, lo: &Tuple, hi: &Tuple) -> Vec<Tuple>;
}

impl Quantiles for LexDirectAccess {
    fn quantile(&self, phi: f64) -> Option<Tuple> {
        if self.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let k = ((self.len() - 1) as f64 * phi).round() as u64;
        self.access(k)
    }

    fn range_count(&self, lo: &Tuple, hi: &Tuple) -> Option<u64> {
        let lo_rank = self.rank_of_lower_bound(lo)?;
        let hi_rank = self.rank_of_lower_bound(hi)?;
        Some(hi_rank.saturating_sub(lo_rank))
    }

    fn range(&self, lo: &Tuple, hi: &Tuple) -> Vec<Tuple> {
        let (Some(lo_rank), Some(hi_rank)) =
            (self.rank_of_lower_bound(lo), self.rank_of_lower_bound(hi))
        else {
            return Vec::new();
        };
        (lo_rank..hi_rank)
            .map(|k| self.access(k).expect("rank below len"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rda_db::{tup, Database};
    use rda_query::parser::parse;
    use rda_query::FdSet;

    fn build() -> LexDirectAccess {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
        LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &FdSet::empty()).unwrap()
    }

    #[test]
    fn permutation_is_complete_and_duplicate_free() {
        let da = build();
        let rng = rand::rngs::StdRng::seed_from_u64(5);
        let e = RandomOrderEnumerator::new(&da, rng);
        let mut got: Vec<Tuple> = e.collect();
        assert_eq!(got.len() as u64, da.len());
        got.sort();
        got.dedup();
        assert_eq!(got.len() as u64, da.len());
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // Over many trials, each answer appears first ~1/5 of the time.
        let da = build();
        let mut first_counts: HashMap<Tuple, u32> = HashMap::new();
        let trials = 4000;
        for seed in 0..trials {
            let rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut e = RandomOrderEnumerator::new(&da, rng);
            *first_counts.entry(e.next().unwrap()).or_insert(0) += 1;
        }
        assert_eq!(first_counts.len() as u64, da.len());
        for (t, c) in first_counts {
            let p = f64::from(c) / trials as f64;
            assert!(
                (p - 0.2).abs() < 0.05,
                "answer {t} appeared first with p={p}"
            );
        }
    }

    #[test]
    fn remaining_and_size_hint() {
        let da = build();
        let rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut e = RandomOrderEnumerator::new(&da, rng);
        assert_eq!(e.remaining(), 5);
        assert_eq!(e.size_hint(), (5, Some(5)));
        e.next();
        assert_eq!(e.remaining(), 4);
    }

    #[test]
    fn quantiles_hit_expected_indices() {
        let da = build();
        assert_eq!(da.quantile(0.0), da.access(0));
        assert_eq!(da.median(), da.access(2));
        assert_eq!(da.quantile(1.0), da.access(4));
        assert_eq!(da.quantile(2.0), da.access(4)); // clamped
    }

    #[test]
    fn range_counting_between_non_answers() {
        let da = build();
        // Figure 2b order: (1,2,5) (1,5,3) (1,5,4) (1,5,6) (6,2,5).
        assert_eq!(da.range_count(&tup![1, 5, 0], &tup![1, 5, 9]), Some(3));
        assert_eq!(da.range_count(&tup![0, 0, 0], &tup![9, 9, 9]), Some(5));
        assert_eq!(da.range_count(&tup![2, 0, 0], &tup![6, 0, 0]), Some(0));
        let r = da.range(&tup![1, 5, 0], &tup![1, 5, 9]);
        assert_eq!(r, vec![tup![1, 5, 3], tup![1, 5, 4], tup![1, 5, 6]]);
    }

    #[test]
    fn empty_structure_yields_nothing() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 100]])
            .with_i64_rows("S", 2, vec![vec![5, 3]]);
        let da =
            LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &FdSet::empty()).unwrap();
        assert_eq!(da.quantile(0.5), None);
        let rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(RandomOrderEnumerator::new(&da, rng).count(), 0);
    }
}
