//! Direct access by sum-of-weights orders (Section 5, Theorems 5.1/8.9).
//!
//! The dichotomy's tractable side is narrow: the (FD-extended) query
//! must be acyclic with one atom containing all free variables
//! (equivalently `αfree(Q⁺) ≤ 1`, Lemma 5.4). Then a semijoin reduction
//! plus one sort materializes the answer array (Lemma 5.9) and accesses
//! are O(1) — everything else is 3SUM-hard (Lemmas 5.7/5.8).

use crate::error::BuildError;
use crate::fdtransform::{check_fds, extend_instance};
use crate::instance::{normalize_instance, positions_of};
use crate::weights::Weights;
use rda_db::{Database, Relation, Tuple};
use rda_orderstat::TotalF64;
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::fd::{fd_extension, FdSet};
use rda_query::gyo;
use rda_query::query::Cq;
use rda_query::VarId;

/// A materialized, weight-sorted answer array with O(1) direct access
/// (Theorem 5.1 / 8.9 positive side).
///
/// Ties on weight are broken by the answer tuple itself, making the
/// order deterministic.
#[derive(Debug, Clone)]
pub struct SumDirectAccess {
    answers: Vec<(TotalF64, Tuple)>,
    /// Answer → rank, for O(1) inverted access.
    rank: std::collections::HashMap<Tuple, u64>,
}

impl SumDirectAccess {
    /// Build for `q` over `db` with attribute weights `w`, under unary
    /// FDs `fds`. Fails with [`BuildError::NotTractable`] exactly on the
    /// paper's intractable side.
    pub fn build(q: &Cq, db: &Database, w: &Weights, fds: &FdSet) -> Result<Self, BuildError> {
        if !fds.is_empty() && !q.is_self_join_free() {
            return Err(BuildError::InvalidOrder(
                "functional dependencies require a self-join-free query".to_string(),
            ));
        }
        match classify(q, fds, &Problem::DirectAccessSum) {
            Verdict::Tractable { .. } => {}
            v => return Err(BuildError::NotTractable(v)),
        }

        let (nq, ndb) = normalize_instance(q, db)?;
        check_fds(&nq, &ndb, fds)?;
        let ext = fd_extension(&nq, fds);
        let idb = extend_instance(&ext, &ndb)?;
        let qp = ext.query;

        // Full reducer over the extension's join tree.
        let tree = gyo::join_tree(&qp.hypergraph()).expect("classification guarantees acyclicity");
        let atom_vars: Vec<Vec<VarId>> = qp.atoms().iter().map(|a| a.terms.clone()).collect();
        let mut rels: Vec<Relation> = qp
            .atoms()
            .iter()
            .map(|a| idb.get(&a.relation).expect("normalized instance").clone())
            .collect();
        crate::instance::full_reduce(&tree, &atom_vars, &mut rels);

        // Project the covering atom onto the *original* head (weights
        // range over the original free variables; promoted variables are
        // determined and weightless — Lemma 8.5).
        let free_plus = qp.free_set();
        let cover = qp
            .atoms()
            .iter()
            .position(|a| free_plus.is_subset(a.var_set()))
            .expect("classification guarantees a covering atom");
        let out_vars = q.free().to_vec();
        let answers_rel = if qp.atoms().is_empty() {
            unreachable!("queries have at least one atom")
        } else {
            rels[cover].project("answers", &positions_of(&atom_vars[cover], &out_vars))
        };

        // Boolean queries: one empty answer iff the join is non-empty.
        let mut answers: Vec<(TotalF64, Tuple)> = if out_vars.is_empty() {
            if rels.iter().any(Relation::is_empty) {
                Vec::new()
            } else {
                vec![(TotalF64(0.0), Tuple::new(vec![]))]
            }
        } else {
            answers_rel
                .tuples()
                .iter()
                .map(|t| (w.answer_weight(&out_vars, t.values()), t.clone()))
                .collect()
        };
        answers.sort();
        let rank = answers
            .iter()
            .enumerate()
            .map(|(i, (_, t))| (t.clone(), i as u64))
            .collect();
        Ok(SumDirectAccess { answers, rank })
    }

    /// Number of answers.
    pub fn len(&self) -> u64 {
        self.answers.len() as u64
    }

    /// `true` when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The answer at index `k` in ascending weight order, O(1).
    ///
    /// Returns an owned tuple — the uniform convention across every
    /// access backend (see `rda_core::plan::DirectAccess`).
    pub fn access(&self, k: u64) -> Option<Tuple> {
        self.answers.get(k as usize).map(|(_, t)| t.clone())
    }

    /// The answer at index `k` together with its weight.
    pub fn access_weighted(&self, k: u64) -> Option<(TotalF64, Tuple)> {
        self.answers.get(k as usize).map(|(w, t)| (*w, t.clone()))
    }

    /// The rank of `answer` in the weight order, or `None` when it is
    /// not an answer. O(1).
    pub fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        self.rank.get(answer).copied()
    }

    /// Iterate answers in weight order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.answers.iter().map(|(_, t)| t.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::tup;
    use rda_query::parser::parse;

    #[test]
    fn single_atom_query_sorts_by_weight() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![3, 1], vec![1, 1], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // Weights: (3,1)=4, (1,1)=2, (2,5)=7.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![1, 1], tup![3, 1], tup![2, 5]]);
        assert_eq!(da.access_weighted(2).unwrap().0, TotalF64(7.0));
        assert_eq!(da.access(3), None);
    }

    #[test]
    fn covering_atom_with_semijoin_filtering() {
        // SUM x + y with z projected away (Example 1.1: tractable).
        let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows(
                "R",
                2,
                vec![vec![1, 5], vec![1, 2], vec![6, 2], vec![9, 99]],
            )
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // (9,99) is dangling. Weights: (1,5)=6, (1,2)=3, (6,2)=8.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![1, 2], tup![1, 5], tup![6, 2]]);
    }

    #[test]
    fn two_path_full_is_rejected() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5]])
            .with_i64_rows("S", 2, vec![vec![5, 3]]);
        let r = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty());
        assert!(matches!(r, Err(BuildError::NotTractable(_))));
    }

    #[test]
    fn fd_extension_unlocks_sum_access() {
        // Example 8.3: Q(x,z) :- R(x,y), S(y,z) with S: y → z; R extends
        // to cover {x, z}.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20], vec![5, 10]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 3]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &fds).unwrap();
        // Answers (x, z): (1,7)=8, (2,3)=5, (5,7)=12.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![2, 3], tup![1, 7], tup![5, 7]]);
    }

    #[test]
    fn ties_break_deterministically() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![2, 1], vec![1, 2], vec![0, 3]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // All weights are 3; ties break by tuple order.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![0, 3], tup![1, 2], tup![2, 1]]);
    }

    #[test]
    fn boolean_query() {
        let q = parse("Q() :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::zero(), &FdSet::empty()).unwrap();
        assert_eq!(da.len(), 1);
        let empty = Database::new().with_i64_rows("R", 2, vec![]);
        let da = SumDirectAccess::build(&q, &empty, &Weights::zero(), &FdSet::empty()).unwrap();
        assert_eq!(da.len(), 0);
    }
}
