//! Direct access by sum-of-weights orders (Section 5, Theorems 5.1/8.9).
//!
//! The dichotomy's tractable side is narrow: the (FD-extended) query
//! must be acyclic with one atom containing all free variables
//! (equivalently `αfree(Q⁺) ≤ 1`, Lemma 5.4). Then a semijoin reduction
//! plus one sort materializes the answer array (Lemma 5.9) and accesses
//! are O(1) — everything else is 3SUM-hard (Lemmas 5.7/5.8).
//!
//! # Layout
//!
//! The sorted answer array is stored columnar and dictionary-encoded
//! (one `u32` column per head position, in weight order), with the
//! weights in a parallel array. Inverted access binary-searches a
//! tuple-sorted permutation of the rows, comparing codes column-wise —
//! O(log n), no tuple hashing, no heap allocation (the pre-arena layout
//! kept a `HashMap<Tuple, u64>` shadow copy of every answer).

use crate::budget::BuildBudget;
use crate::error::BuildError;
use crate::fault;
use crate::instance::{full_reduce, positions_of};
use crate::snapprep::{check_fds_encoded, extend_instance_encoded, normalize_encoded};
use crate::weights::Weights;
use crate::window::WindowBuf;
use rda_db::parallel;
use rda_db::{Database, Dictionary, EncodedRelation, ShardedSnapshot, Snapshot, Tuple, Value};
use rda_orderstat::TotalF64;
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::fd::{fd_extension, FdSet};
use rda_query::gyo;
use rda_query::query::Cq;
use rda_query::VarId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

thread_local! {
    /// Reusable probe-encoding buffer; keeps `inverted_access`
    /// allocation-free and the structure `Sync`.
    static PROBE: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// A materialized, weight-sorted answer array with O(1) direct access
/// and O(log n) allocation-free inverted access (Theorem 5.1 / 8.9
/// positive side).
///
/// Ties on weight are broken by the answer tuple itself, making the
/// order deterministic.
#[derive(Debug, Clone)]
pub struct SumDirectAccess {
    /// The shared snapshot the structure was built over; its dictionary
    /// decodes the answer columns.
    snap: Arc<Snapshot>,
    /// Number of answers.
    len: usize,
    /// One code column per head position; row `k` is answer `k` in
    /// ascending (weight, tuple) order.
    cols: Vec<Vec<u32>>,
    /// Answer weights, parallel to the rows.
    weights: Vec<TotalF64>,
    /// Row indices sorted by the encoded tuple — the binary-search
    /// index behind [`SumDirectAccess::inverted_access`].
    by_tuple: Vec<u32>,
}

impl SumDirectAccess {
    /// Build for `q` over a frozen [`Snapshot`] with attribute weights
    /// `w`, under unary FDs `fds`. The whole build runs in the
    /// snapshot's code space — no relation is re-encoded or cloned.
    /// The structure pins its snapshot: later
    /// [`Snapshot::freeze_delta`] generations never disturb it.
    /// Fails with [`BuildError::NotTractable`] exactly on the paper's
    /// intractable side.
    pub fn build_on(
        q: &Cq,
        snap: &Arc<Snapshot>,
        w: &Weights,
        fds: &FdSet,
    ) -> Result<Self, BuildError> {
        Self::build_on_budgeted(q, snap, w, fds, BuildBudget::UNLIMITED)
    }

    /// [`SumDirectAccess::build_on`] under a [`BuildBudget`]: the
    /// answer-proportional columns are charged in one step once the
    /// projected answer count is known — before the weight, permutation,
    /// and column arrays are allocated — aborting hostile builds with
    /// [`BuildError::BudgetExceeded`].
    pub fn build_on_budgeted(
        q: &Cq,
        snap: &Arc<Snapshot>,
        w: &Weights,
        fds: &FdSet,
        budget: BuildBudget,
    ) -> Result<Self, BuildError> {
        fault::trip(fault::SITE_SUMDA_BUILD)
            .map_err(|f| BuildError::FaultInjected { site: f.site })?;
        Self::build_inner(q, snap, w, fds, budget)
    }

    /// [`SumDirectAccess::build_on_budgeted`] with the expensive phases
    /// — semijoin reduction, projection, weighing, sorting — fanned out
    /// over a [`ShardedSnapshot`]'s partitions of the first head
    /// variable's code space, then merged back into one standard
    /// structure. Sum ranks interleave shards (a heavy tuple in shard 0
    /// can outrank everything in shard 3), so unlike the lexicographic
    /// case the merge happens once at build time and accesses stay
    /// exactly as they were; the returned per-shard answer counts feed
    /// the engine's routing report.
    ///
    /// Degenerates to a single-shard build (bit-identical to
    /// [`SumDirectAccess::build_on`]) for one shard, under functional
    /// dependencies, with self-joins, or for boolean heads. `budget` is
    /// enforced per shard.
    pub fn build_on_sharded(
        q: &Cq,
        sharded: &ShardedSnapshot,
        w: &Weights,
        fds: &FdSet,
        budget: BuildBudget,
    ) -> Result<(Self, Vec<u64>), BuildError> {
        fault::trip(fault::SITE_SUMDA_BUILD)
            .map_err(|f| BuildError::FaultInjected { site: f.site })?;
        let base = sharded.base();
        if sharded.shards() <= 1 || !fds.is_empty() || !q.is_self_join_free() || q.free().is_empty()
        {
            let da = Self::build_inner(q, base, w, fds, budget)?;
            let rows = vec![da.len()];
            return Ok((da, rows));
        }
        // Classify up front so intractability surfaces once, not n
        // times from inside the fan-out.
        match classify(q, fds, &Problem::DirectAccessSum) {
            Verdict::Tractable { .. } => {}
            v => return Err(BuildError::NotTractable(v)),
        }
        // Restrict every atom containing the first head variable to the
        // shard's leading-code range (first occurrence is exact: the
        // normalized encoding only keeps rows whose repeated positions
        // agree). Answers partition by that variable's code, so the
        // per-shard answer sets are disjoint and complete.
        let route = q.free()[0];
        let mut route_pos: Vec<(&str, usize)> = Vec::new();
        for atom in q.atoms() {
            let enc = base
                .encoded(&atom.relation)
                .ok_or_else(|| BuildError::MissingRelation(atom.relation.clone()))?;
            if enc.arity() != atom.terms.len() {
                return Err(BuildError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: atom.terms.len(),
                    found: enc.arity(),
                });
            }
            if let Some(p) = atom.terms.iter().position(|&t| t == route) {
                route_pos.push((atom.relation.as_str(), p));
            }
        }
        if route_pos.is_empty() {
            let da = Self::build_inner(q, base, w, fds, budget)?;
            let rows = vec![da.len()];
            return Ok((da, rows));
        }
        let n = sharded.shards();
        let built: Vec<Result<SumDirectAccess, BuildError>> =
            parallel::map_indexed_with(n, n, |s| {
                let (lo, hi) = sharded.shard_range(s);
                let mut overrides: BTreeMap<String, Arc<EncodedRelation>> = BTreeMap::new();
                for &(name, p) in &route_pos {
                    let part = if p == 0 {
                        Arc::clone(sharded.part(name, s).expect("partitioned at freeze"))
                    } else {
                        let enc = base.encoded(name).expect("validated above");
                        Arc::new(enc.filter_col_range(p, lo, hi))
                    };
                    overrides.insert(name.to_string(), part);
                }
                let view = base.with_encoding_overrides(overrides);
                Self::build_inner(q, &view, w, fds, budget)
            });
        let mut parts = Vec::with_capacity(n);
        for r in built {
            parts.push(r?);
        }
        Self::merge_shards(parts, Arc::clone(base))
    }

    /// K-way merge of per-shard structures (in shard order) by
    /// ascending (weight, tuple). Within a shard the rows already
    /// ascend by (weight, local tuple); across shards, equal weights
    /// order by shard index — which **is** tuple order, because every
    /// first-column code of shard `s` precedes every one of shard
    /// `s + 1`. The tuple-sorted index is rebuilt from the per-shard
    /// inverses: global tuple order is shard-major for the same reason.
    fn merge_shards(
        parts: Vec<SumDirectAccess>,
        base: Arc<Snapshot>,
    ) -> Result<(Self, Vec<u64>), BuildError> {
        let n = parts.len();
        let total = parts
            .iter()
            .try_fold(0usize, |acc, p| acc.checked_add(p.len))
            .ok_or(BuildError::CountOverflow)?;
        let arity = parts[0].cols.len();
        let mut tuple_base = Vec::with_capacity(n);
        let mut acc = 0usize;
        for p in &parts {
            tuple_base.push(acc);
            acc += p.len;
        }
        // Per shard: weight-order position → local tuple-order position
        // (the inverse of `by_tuple`).
        let inv: Vec<Vec<u32>> = parts
            .iter()
            .map(|p| {
                let mut v = vec![0u32; p.len];
                for (j, &k) in p.by_tuple.iter().enumerate() {
                    v[k as usize] = j as u32;
                }
                v
            })
            .collect();
        let mut cols: Vec<Vec<u32>> = (0..arity).map(|_| Vec::with_capacity(total)).collect();
        let mut weights: Vec<TotalF64> = Vec::with_capacity(total);
        let mut by_tuple: Vec<u32> = vec![0; total];
        let mut cur = vec![0usize; n];
        for out_k in 0..total {
            let mut best: Option<usize> = None;
            for (s, p) in parts.iter().enumerate() {
                if cur[s] < p.len
                    && best.is_none_or(|b| p.weights[cur[s]] < parts[b].weights[cur[b]])
                {
                    best = Some(s);
                }
            }
            let s = best.expect("total counts the unfinished cursors");
            let i = cur[s];
            cur[s] += 1;
            for (c, pc) in cols.iter_mut().zip(parts[s].cols.iter()) {
                c.push(pc[i]);
            }
            weights.push(parts[s].weights[i]);
            by_tuple[tuple_base[s] + inv[s][i] as usize] = out_k as u32;
        }
        let rows = parts.iter().map(|p| p.len as u64).collect();
        Ok((
            SumDirectAccess {
                snap: base,
                len: total,
                cols,
                weights,
                by_tuple,
            },
            rows,
        ))
    }

    /// The build pipeline behind every entry point (no fault trip —
    /// callers trip [`fault::SITE_SUMDA_BUILD`] exactly once).
    fn build_inner(
        q: &Cq,
        snap: &Arc<Snapshot>,
        w: &Weights,
        fds: &FdSet,
        budget: BuildBudget,
    ) -> Result<Self, BuildError> {
        if !fds.is_empty() && !q.is_self_join_free() {
            return Err(BuildError::InvalidOrder(
                "functional dependencies require a self-join-free query".to_string(),
            ));
        }
        match classify(q, fds, &Problem::DirectAccessSum) {
            Verdict::Tractable { .. } => {}
            v => return Err(BuildError::NotTractable(v)),
        }

        let (nq, rels) = normalize_encoded(q, snap)?;
        check_fds_encoded(&nq, &rels, fds)?;
        let ext = fd_extension(&nq, fds);
        let mut rels = extend_instance_encoded(&ext, &nq, rels)?;
        let qp = ext.query;

        // Full reducer over the extension's join tree, copy-on-write:
        // a semijoin pass that removes nothing leaves the borrowed
        // snapshot relation untouched.
        let tree = gyo::join_tree(&qp.hypergraph()).expect("classification guarantees acyclicity");
        let atom_vars: Vec<Vec<VarId>> = qp.atoms().iter().map(|a| a.terms.clone()).collect();
        full_reduce(&tree, &atom_vars, &mut rels);

        // Boolean queries: one empty answer iff the join is non-empty.
        let out_vars = q.free().to_vec();
        if out_vars.is_empty() {
            let empty = rels.iter().any(|r| r.is_empty());
            return Ok(SumDirectAccess {
                snap: Arc::clone(snap),
                len: usize::from(!empty),
                cols: Vec::new(),
                weights: if empty {
                    Vec::new()
                } else {
                    vec![TotalF64(0.0)]
                },
                by_tuple: if empty { Vec::new() } else { vec![0] },
            });
        }

        // Project the covering atom onto the *original* head (weights
        // range over the original free variables; promoted variables are
        // determined and weightless — Lemma 8.5). `project` sorts and
        // deduplicates, so the rows are the distinct answers in tuple
        // order.
        let free_plus = qp.free_set();
        let cover = qp
            .atoms()
            .iter()
            .position(|a| free_plus.is_subset(a.var_set()))
            .expect("classification guarantees a covering atom");
        let answers = rels[cover].project(&positions_of(&atom_vars[cover], &out_vars));

        // Weigh each answer by decoding codes *by reference* through the
        // shared dictionary, then sort a permutation by (weight, row).
        // Rows already ascend in tuple order, so breaking weight ties by
        // row index is exactly the (weight, tuple) order.
        let dict = snap.dict();
        let len = answers.len();
        // The entire remaining build is Θ(len): per answer, one weight
        // (16B), two permutation slots (8B), one column code per head
        // position (4B each). Charge it all here, before the first big
        // allocation.
        budget.meter().charge(
            len as u64 * (16 + 8 + 4 * out_vars.len() as u64),
            len as u64,
        )?;
        let row_weights: Vec<TotalF64> = (0..len)
            .map(|row| {
                out_vars
                    .iter()
                    .enumerate()
                    .map(|(p, &v)| w.get(v, dict.value(answers.code(row, p))))
                    .sum()
            })
            .collect();
        let mut perm: Vec<u32> = (0..len as u32).collect();
        perm.sort_unstable_by_key(|&r| (row_weights[r as usize], r));

        let cols: Vec<Vec<u32>> = (0..out_vars.len())
            .map(|p| perm.iter().map(|&r| answers.code(r as usize, p)).collect())
            .collect();
        let weights: Vec<TotalF64> = perm.iter().map(|&r| row_weights[r as usize]).collect();
        // Row j in tuple order sits at position inverse_perm[j] of the
        // weight order — exactly the tuple-sorted index.
        let mut by_tuple: Vec<u32> = vec![0; len];
        for (k, &r) in perm.iter().enumerate() {
            by_tuple[r as usize] = k as u32;
        }
        Ok(SumDirectAccess {
            snap: Arc::clone(snap),
            len,
            cols,
            weights,
            by_tuple,
        })
    }

    /// Convenience for one-shot builds from a value-level [`Database`]:
    /// clones and freezes `db` into a private snapshot, then builds.
    /// Serving workloads should freeze once ([`Database::freeze`]) and
    /// call [`SumDirectAccess::build_on`].
    pub fn build(q: &Cq, db: &Database, w: &Weights, fds: &FdSet) -> Result<Self, BuildError> {
        Self::build_on(q, &db.clone().freeze(), w, fds)
    }

    /// The snapshot the structure was built over.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snap
    }

    /// The order-preserving dictionary the structure is encoded under —
    /// the snapshot's shared dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        self.snap.dict()
    }

    /// Number of answers.
    pub fn len(&self) -> u64 {
        self.len as u64
    }

    /// `true` when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decode row `k` into an owned tuple (the single allocation of the
    /// access path): reserved at exactly the head arity and decoded in
    /// place, so the `Vec → Box<[Value]>` conversion inside
    /// [`Tuple::new`] is a pointer move, never a reallocation.
    fn decode(&self, k: usize) -> Tuple {
        let dict = self.snap.dict();
        let mut vals = Vec::with_capacity(self.cols.len());
        vals.extend(self.cols.iter().map(|c| dict.value(c[k]).clone()));
        Tuple::new(vals)
    }

    /// The answer at index `k` in ascending weight order, O(1).
    ///
    /// Returns an owned tuple — the uniform convention across every
    /// access backend (see `rda_core::plan::DirectAccess`); the tuple is
    /// the only heap allocation (see [`SumDirectAccess::access_into`]).
    pub fn access(&self, k: u64) -> Option<Tuple> {
        ((k as usize) < self.len).then(|| self.decode(k as usize))
    }

    /// Allocation-free [`SumDirectAccess::access`]: write answer `k`
    /// into `out` (reusing its capacity) and report whether `k` was in
    /// bounds.
    pub fn access_into(&self, k: u64, out: &mut Vec<Value>) -> bool {
        out.clear();
        if (k as usize) >= self.len {
            return false;
        }
        let dict = self.snap.dict();
        out.extend(self.cols.iter().map(|c| dict.value(c[k as usize]).clone()));
        true
    }

    /// The answer at index `k` together with its weight.
    pub fn access_weighted(&self, k: u64) -> Option<(TotalF64, Tuple)> {
        ((k as usize) < self.len).then(|| (self.weights[k as usize], self.decode(k as usize)))
    }

    /// The rank of `answer` in the weight order, or `None` when it is
    /// not an answer. O(log n), allocation-free: the probe is encoded
    /// through the dictionary (a miss proves non-membership) and
    /// binary-searched against the tuple-sorted row index.
    pub fn inverted_access(&self, answer: &Tuple) -> Option<u64> {
        if answer.arity() != self.cols.len() {
            return None;
        }
        PROBE.with(|p| {
            let mut probe = p.borrow_mut();
            if !self.snap.dict().encode_tuple_into(answer, &mut probe) {
                return None;
            }
            self.by_tuple
                .binary_search_by(|&row| {
                    self.cols
                        .iter()
                        .zip(probe.iter())
                        .map(|(c, &pc)| c[row as usize].cmp(&pc))
                        .find(|o| o.is_ne())
                        .unwrap_or(Ordering::Equal)
                })
                .ok()
                .map(|j| self.by_tuple[j] as u64)
        })
    }

    /// Windowed access: write the answers at ranks `range` (clamped to
    /// `len()`) into `out` in order, returning how many were written.
    /// A straight columnar scan: O(1) per tuple, and **zero** heap
    /// allocations once `out` has grown to the window's size.
    pub fn access_range_into(&self, range: Range<u64>, out: &mut WindowBuf) -> u64 {
        out.begin(self.cols.len());
        let (lo, hi) = crate::window::clamp_range(&range, self.len as u64);
        let dict = self.snap.dict();
        for k in lo as usize..hi as usize {
            out.push_with(|vals| vals.extend(self.cols.iter().map(|c| dict.value(c[k]).clone())));
        }
        hi - lo
    }

    /// Batched [`SumDirectAccess::access`]: the answers at the given
    /// ranks, in input order, skipping out-of-range ranks.
    pub fn access_batch(&self, ranks: &[u64]) -> Vec<Tuple> {
        let mut out = WindowBuf::new();
        self.access_batch_into(ranks, &mut out);
        out.to_tuples()
    }

    /// Allocation-free [`SumDirectAccess::access_batch`]: fill `out`
    /// with the answers at the given ranks (input order, out-of-range
    /// ranks skipped) and return how many rows were written. A columnar
    /// gather — O(1) per rank in any order, so no sorting pass is
    /// needed; **zero** heap allocations once `out` has grown.
    pub fn access_batch_into(&self, ranks: &[u64], out: &mut WindowBuf) -> u64 {
        out.begin(self.cols.len());
        let dict = self.snap.dict();
        let mut n = 0;
        for &k in ranks {
            if (k as usize) < self.len {
                out.push_with(|vals| {
                    vals.extend(self.cols.iter().map(|c| dict.value(c[k as usize]).clone()))
                });
                n += 1;
            }
        }
        n
    }

    /// Iterate the answers at ranks `range` (clamped to `len()`) in
    /// weight order.
    pub fn iter_range(&self, range: Range<u64>) -> impl Iterator<Item = Tuple> + '_ {
        let (lo, hi) = crate::window::clamp_range(&range, self.len as u64);
        (lo as usize..hi as usize).map(|k| self.decode(k))
    }

    /// Iterate answers in weight order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len).map(|k| self.decode(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::tup;
    use rda_query::parser::parse;

    #[test]
    fn single_atom_query_sorts_by_weight() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![3, 1], vec![1, 1], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // Weights: (3,1)=4, (1,1)=2, (2,5)=7.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![1, 1], tup![3, 1], tup![2, 5]]);
        assert_eq!(da.access_weighted(2).unwrap().0, TotalF64(7.0));
        assert_eq!(da.access(3), None);
    }

    #[test]
    fn covering_atom_with_semijoin_filtering() {
        // SUM x + y with z projected away (Example 1.1: tractable).
        let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows(
                "R",
                2,
                vec![vec![1, 5], vec![1, 2], vec![6, 2], vec![9, 99]],
            )
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // (9,99) is dangling. Weights: (1,5)=6, (1,2)=3, (6,2)=8.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![1, 2], tup![1, 5], tup![6, 2]]);
    }

    #[test]
    fn inverted_access_round_trips_and_rejects() {
        let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        for k in 0..da.len() {
            let t = da.access(k).unwrap();
            assert_eq!(da.inverted_access(&t), Some(k), "k={k}");
        }
        // Not an answer (dangling / absent / wrong arity).
        assert_eq!(da.inverted_access(&tup![9, 99]), None);
        assert_eq!(da.inverted_access(&tup![0, 0]), None);
        assert_eq!(da.inverted_access(&tup![1, 2, 3]), None);
    }

    #[test]
    fn access_into_matches_access() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![3, 1], vec![1, 1], vec![2, 5]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        let mut buf = Vec::new();
        for k in 0..da.len() {
            assert!(da.access_into(k, &mut buf));
            assert_eq!(Tuple::new(buf.clone()), da.access(k).unwrap());
        }
        assert!(!da.access_into(da.len(), &mut buf));
    }

    #[test]
    fn two_path_full_is_rejected() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5]])
            .with_i64_rows("S", 2, vec![vec![5, 3]]);
        let r = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty());
        assert!(matches!(r, Err(BuildError::NotTractable(_))));
    }

    #[test]
    fn fd_extension_unlocks_sum_access() {
        // Example 8.3: Q(x,z) :- R(x,y), S(y,z) with S: y → z; R extends
        // to cover {x, z}.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20], vec![5, 10]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 3]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &fds).unwrap();
        // Answers (x, z): (1,7)=8, (2,3)=5, (5,7)=12.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![2, 3], tup![1, 7], tup![5, 7]]);
    }

    #[test]
    fn ties_break_deterministically() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![2, 1], vec![1, 2], vec![0, 3]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
        // All weights are 3; ties break by tuple order.
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![0, 3], tup![1, 2], tup![2, 1]]);
    }

    #[test]
    fn boolean_query() {
        let q = parse("Q() :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
        let da = SumDirectAccess::build(&q, &db, &Weights::zero(), &FdSet::empty()).unwrap();
        assert_eq!(da.len(), 1);
        assert_eq!(da.inverted_access(&Tuple::new(vec![])), Some(0));
        let empty = Database::new().with_i64_rows("R", 2, vec![]);
        let da = SumDirectAccess::build(&q, &empty, &Weights::zero(), &FdSet::empty()).unwrap();
        assert_eq!(da.len(), 0);
        assert_eq!(da.inverted_access(&Tuple::new(vec![])), None);
    }
}
