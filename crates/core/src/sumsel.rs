//! Selection by sum-of-weights orders (Section 7, Theorems 7.3/8.10).
//!
//! Tractable iff the (FD-extended) query is free-connex with at most two
//! free-maximal hyperedges. The algorithm:
//!
//! 1. reduce to a full acyclic query over the free variables
//!    (Proposition 2.3);
//! 2. contract it maximally (Definition 7.5), replaying each step on the
//!    instance (Lemma 7.7): absorbed atoms semijoin-filter their
//!    absorber, absorbed variables pack into [`Value::Pair`]s whose
//!    weight is the sum of the packed weights;
//! 3. one atom left (Lemma 7.8): expected-linear quickselect on tuple
//!    weights; two atoms left (Lemma 7.10): bucket by the join key and
//!    select over a union of implicit sorted matrices (Theorem 7.9);
//! 4. unpack the chosen tuples back into an answer.

use crate::error::BuildError;
use crate::fdtransform::{check_fds, extend_instance};
use crate::instance::{normalize_instance, positions_of, reduce_to_full};
use crate::weights::Weights;
use rda_db::{Database, Relation, Tuple, Value};
use rda_orderstat::select::select_nth_by;
use rda_orderstat::{MatrixUnion, SortedMatrix, TotalF64};
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::contraction::{maximal_contraction, ContractionStep};
use rda_query::fd::{fd_extension, FdSet};
use rda_query::query::Cq;
use rda_query::VarId;
use std::collections::HashMap;

/// Per-variable weight table over active domains, updated as values pack.
type WMap = HashMap<(VarId, Value), TotalF64>;

/// Tuples of one relation tagged with their weights, sorted ascending.
type WeightedSide = Vec<(TotalF64, Tuple)>;

/// Theorem 7.3 / 8.10: the answer at index `k` when the answers of `q`
/// over `db` are sorted by total weight under `w`, together with that
/// weight. Ties on equal weight are broken arbitrarily: the returned
/// answer is guaranteed to have the k-th smallest answer weight.
/// `Ok(None)` means "out-of-bound". The raw operation behind the
/// engine's [`crate::SelectionSumHandle`], which is the public route
/// to it.
pub(crate) fn selection_sum_impl(
    q: &Cq,
    db: &Database,
    w: &Weights,
    k: u64,
    fds: &FdSet,
) -> Result<Option<(TotalF64, Tuple)>, BuildError> {
    if !fds.is_empty() && !q.is_self_join_free() {
        return Err(BuildError::InvalidOrder(
            "functional dependencies require a self-join-free query".to_string(),
        ));
    }
    match classify(q, fds, &Problem::SelectionSum) {
        Verdict::Tractable { .. } => {}
        v => return Err(BuildError::NotTractable(v)),
    }

    let (nq, ndb) = normalize_instance(q, db)?;
    check_fds(&nq, &ndb, fds)?;
    let ext = fd_extension(&nq, fds);
    let idb = extend_instance(&ext, &ndb)?;
    let qp = ext.query.clone();
    let original_free = q.free().to_vec();

    let red =
        reduce_to_full(&qp, &idb).expect("classification guarantees the extension is free-connex");
    if red.known_empty {
        return Ok(None);
    }
    if red.query.atoms().is_empty() {
        // Boolean query with a non-empty join.
        return Ok((k == 0).then(|| (TotalF64(0.0), Tuple::new(vec![]))));
    }

    // Materialize per-variable weights over active domains. Weights range
    // over the *original* free variables; promoted variables weigh 0.
    let mut wmap: WMap = HashMap::new();
    let original_set: rda_query::VarSet = original_free.iter().copied().collect();
    for atom in red.query.atoms() {
        let rel = red.db.get(&atom.relation).expect("reduced relation");
        for t in rel.tuples() {
            for (p, &v) in atom.terms.iter().enumerate() {
                let weight = if original_set.contains(v) {
                    w.get(v, &t[p])
                } else {
                    TotalF64(0.0)
                };
                wmap.insert((v, t[p].clone()), weight);
            }
        }
    }

    // Contract maximally, replaying on the instance.
    let contraction = maximal_contraction(&red.query);
    let mut schemas: HashMap<String, Vec<VarId>> = red
        .query
        .atoms()
        .iter()
        .map(|a| (a.relation.clone(), a.terms.clone()))
        .collect();
    let mut rels: HashMap<String, Relation> = red
        .query
        .atoms()
        .iter()
        .map(|a| {
            (
                a.relation.clone(),
                red.db.get(&a.relation).expect("reduced").clone(),
            )
        })
        .collect();
    for step in &contraction.steps {
        match step {
            ContractionStep::AbsorbAtom { removed, into } => {
                let removed_terms = schemas[removed].clone();
                let removed_rel = rels[removed].clone();
                let into_terms = schemas[into].clone();
                let self_keys = positions_of(&into_terms, &removed_terms);
                let other_keys: Vec<usize> = (0..removed_terms.len()).collect();
                rels.get_mut(into).expect("absorber exists").semijoin(
                    &self_keys,
                    &removed_rel,
                    &other_keys,
                );
                schemas.remove(removed);
                rels.remove(removed);
            }
            ContractionStep::AbsorbVar { removed, into } => {
                for (name, terms) in schemas.iter_mut() {
                    let Some(rp) = terms.iter().position(|t| t == removed) else {
                        continue;
                    };
                    let up = terms
                        .iter()
                        .position(|t| t == into)
                        .expect("absorbed variables share exactly the same atoms");
                    let rel = rels.get_mut(name).expect("schema and relation in sync");
                    let mut tuples = Vec::with_capacity(rel.len());
                    for t in rel.tuples() {
                        let packed = Value::pair(t[up].clone(), t[rp].clone());
                        let wu = wmap[&(*into, t[up].clone())];
                        let wv = wmap[&(*removed, t[rp].clone())];
                        wmap.insert((*into, packed.clone()), wu + wv);
                        let new_t: Tuple = t
                            .iter()
                            .enumerate()
                            .filter(|&(p, _)| p != rp)
                            .map(|(p, v)| if p == up { packed.clone() } else { v.clone() })
                            .collect();
                        tuples.push(new_t);
                    }
                    let arity = terms.len() - 1;
                    let mut new_rel = Relation::from_tuples(name.clone(), arity, tuples);
                    new_rel.normalize();
                    *rel = new_rel;
                    terms.remove(rp);
                }
            }
        }
    }

    // Tuple weights: assign every surviving variable to the first atom
    // containing it.
    let qm = &contraction.query;
    let mut assigned: HashMap<VarId, usize> = HashMap::new();
    for (ai, atom) in qm.atoms().iter().enumerate() {
        for &v in &atom.terms {
            assigned.entry(v).or_insert(ai);
        }
    }
    let tuple_weight = |atom_idx: usize, t: &Tuple| -> TotalF64 {
        let atom = &qm.atoms()[atom_idx];
        atom.terms
            .iter()
            .enumerate()
            .filter(|&(_, v)| assigned[v] == atom_idx)
            .map(|(p, v)| wmap[&(*v, t[p].clone())])
            .sum()
    };

    let picked: Option<Vec<(usize, Tuple)>> = match qm.atoms().len() {
        1 => select_single(qm, &rels, &tuple_weight, k),
        2 => select_pair(qm, &schemas, &rels, &tuple_weight, k),
        n => unreachable!("fmh ≤ 2 leaves at most two atoms, got {n}"),
    };
    let Some(picked) = picked else {
        return Ok(None);
    };

    // Reconstruct the assignment over free(Q') and unpack.
    let mut assignment: HashMap<VarId, Value> = HashMap::new();
    for (atom_idx, t) in &picked {
        for (p, &v) in qm.atoms()[*atom_idx].terms.iter().enumerate() {
            assignment.insert(v, t[p].clone());
        }
    }
    for step in contraction.steps.iter().rev() {
        if let ContractionStep::AbsorbVar { removed, into } = step {
            let packed = assignment[into].clone();
            let (a, b) = packed.as_pair().expect("packed during contraction");
            assignment.insert(*into, a.clone());
            assignment.insert(*removed, b.clone());
        }
    }

    let answer: Tuple = original_free
        .iter()
        .map(|v| assignment[v].clone())
        .collect();
    let weight = w.answer_weight(&original_free, answer.values());
    Ok(Some((weight, answer)))
}

/// Lemma 7.8: one atom — quickselect over tuple weights.
fn select_single(
    qm: &Cq,
    rels: &HashMap<String, Relation>,
    tuple_weight: &dyn Fn(usize, &Tuple) -> TotalF64,
    k: u64,
) -> Option<Vec<(usize, Tuple)>> {
    let rel = &rels[&qm.atoms()[0].relation];
    let mut items: Vec<(TotalF64, Tuple)> = rel
        .tuples()
        .iter()
        .map(|t| (tuple_weight(0, t), t.clone()))
        .collect();
    let chosen = select_nth_by(&mut items, k as usize, |a, b| a.cmp(b))?.clone();
    Some(vec![(0, chosen.1)])
}

/// Lemma 7.10: two atoms — bucket by the join key, then select on a
/// union of implicit sorted matrices.
fn select_pair(
    qm: &Cq,
    schemas: &HashMap<String, Vec<VarId>>,
    rels: &HashMap<String, Relation>,
    tuple_weight: &dyn Fn(usize, &Tuple) -> TotalF64,
    k: u64,
) -> Option<Vec<(usize, Tuple)>> {
    let a = &qm.atoms()[0];
    let b = &qm.atoms()[1];
    let a_terms = &schemas[&a.relation];
    let b_terms = &schemas[&b.relation];
    let join_vars: Vec<VarId> = a_terms
        .iter()
        .copied()
        .filter(|v| b_terms.contains(v))
        .collect();
    let a_key = positions_of(a_terms, &join_vars);
    let b_key = positions_of(b_terms, &join_vars);

    // Bucketize and sort each side by tuple weight.
    let mut buckets: HashMap<Tuple, (WeightedSide, WeightedSide)> = HashMap::new();
    for t in rels[&a.relation].tuples() {
        buckets
            .entry(t.project(&a_key))
            .or_default()
            .0
            .push((tuple_weight(0, t), t.clone()));
    }
    for t in rels[&b.relation].tuples() {
        if let Some(entry) = buckets.get_mut(&t.project(&b_key)) {
            entry.1.push((tuple_weight(1, t), t.clone()));
        }
    }
    buckets.retain(|_, (av, bv)| !av.is_empty() && !bv.is_empty());
    let mut sides: Vec<(WeightedSide, WeightedSide)> = Vec::new();
    for (_, (mut av, mut bv)) in buckets {
        av.sort_by_key(|x| x.0);
        bv.sort_by_key(|x| x.0);
        sides.push((av, bv));
    }

    let union = MatrixUnion::new(
        sides
            .iter()
            .map(|(av, bv)| {
                SortedMatrix::new(
                    av.iter().map(|(w, _)| *w).collect(),
                    bv.iter().map(|(w, _)| *w).collect(),
                )
            })
            .collect(),
    );
    let lambda = union.select(k)?;

    // Witness: find one (r, s) pair summing to lambda. Compare the sum
    // itself (not `lambda - wa`) so floating-point equality is exact —
    // lambda was produced as one of these very sums.
    for (av, bv) in &sides {
        for (wa, ta) in av {
            let idx = bv.partition_point(|(wb, _)| *wa + *wb < lambda);
            if idx < bv.len() && *wa + bv[idx].0 == lambda {
                return Some(vec![(0, ta.clone()), (1, bv[idx].1.clone())]);
            }
        }
    }
    unreachable!("a selected weight always has a witness pair")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_query::parser::parse;

    fn fig2_db() -> Database {
        Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
    }

    /// Naive oracle: all answer weights of the Figure 2 2-path query.
    fn fig2_weights() -> Vec<f64> {
        // Answers (x,y,z): (1,2,5)=8, (1,5,3)=9, (1,5,4)=10, (1,5,6)=12, (6,2,5)=13.
        vec![8.0, 9.0, 10.0, 12.0, 13.0]
    }

    #[test]
    fn figure_2d_sum_selection() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        for (k, expect) in fig2_weights().into_iter().enumerate() {
            let (w, t) = selection_sum_impl(
                &q,
                &fig2_db(),
                &Weights::identity(),
                k as u64,
                &FdSet::empty(),
            )
            .unwrap()
            .unwrap();
            assert_eq!(w, TotalF64(expect), "k={k}");
            // The witness really is an answer with that weight.
            let s: f64 = t.values().iter().map(|v| v.as_int().unwrap() as f64).sum();
            assert_eq!(s, expect);
        }
        let none =
            selection_sum_impl(&q, &fig2_db(), &Weights::identity(), 5, &FdSet::empty()).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn figure_2d_order_note() {
        // Figure 2d: the 2nd/3rd answers both weigh 9 in the paper's
        // variant ((1,5,3) and (1,2,6)); our Figure 2a database yields
        // distinct weights, checked above. This test pins the median.
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let (w, _) = selection_sum_impl(&q, &fig2_db(), &Weights::identity(), 2, &FdSet::empty())
            .unwrap()
            .unwrap();
        assert_eq!(w, TotalF64(10.0));
    }

    #[test]
    fn cartesian_product_two_atoms() {
        let q = parse("Q(a, b) :- R(a), S(b)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 1, vec![vec![1], vec![10]])
            .with_i64_rows("S", 1, vec![vec![2], vec![20]]);
        // Weights: 3, 12, 21, 30.
        let expect = [3.0, 12.0, 21.0, 30.0];
        for (k, e) in expect.iter().enumerate() {
            let (w, _) =
                selection_sum_impl(&q, &db, &Weights::identity(), k as u64, &FdSet::empty())
                    .unwrap()
                    .unwrap();
            assert_eq!(w, TotalF64(*e), "k={k}");
        }
    }

    #[test]
    fn single_atom_after_contraction() {
        // Q(x, y) :- R(x, u, y): u is absorbed (existential, same atoms
        // as x), leaving one atom.
        let q = parse("Q(x, y) :- R(x, u, y)").unwrap();
        let db = Database::new().with_i64_rows(
            "R",
            3,
            vec![vec![1, 0, 5], vec![2, 0, 1], vec![0, 0, 2]],
        );
        // Answers (x, y): weights 6, 3, 2.
        let got: Vec<f64> = (0..3)
            .map(|k| {
                selection_sum_impl(&q, &db, &Weights::identity(), k, &FdSet::empty())
                    .unwrap()
                    .unwrap()
                    .0
                     .0
            })
            .collect();
        assert_eq!(got, vec![2.0, 3.0, 6.0]);
    }

    #[test]
    fn projected_three_path_is_tractable() {
        // Example 7.4: Q'3(x,y,z) :- R(x,y), S(y,z), T(z,u).
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, u)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2], vec![3, 4]])
            .with_i64_rows("S", 2, vec![vec![2, 5], vec![4, 6]])
            .with_i64_rows("T", 2, vec![vec![5, 0], vec![6, 0]]);
        // Answers: (1,2,5)=8, (3,4,6)=13.
        let (w0, _) = selection_sum_impl(&q, &db, &Weights::identity(), 0, &FdSet::empty())
            .unwrap()
            .unwrap();
        let (w1, _) = selection_sum_impl(&q, &db, &Weights::identity(), 1, &FdSet::empty())
            .unwrap()
            .unwrap();
        assert_eq!((w0, w1), (TotalF64(8.0), TotalF64(13.0)));
    }

    #[test]
    fn full_three_path_is_rejected() {
        let q = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2]])
            .with_i64_rows("S", 2, vec![vec![2, 3]])
            .with_i64_rows("T", 2, vec![vec![3, 4]]);
        let r = selection_sum_impl(&q, &db, &Weights::identity(), 0, &FdSet::empty());
        assert!(matches!(r, Err(BuildError::NotTractable(_))));
    }

    #[test]
    fn explicit_weights_override_values() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        // Zero weights: every answer weighs 0; still returns valid answers.
        let (w, t) = selection_sum_impl(&q, &fig2_db(), &Weights::zero(), 3, &FdSet::empty())
            .unwrap()
            .unwrap();
        assert_eq!(w, TotalF64(0.0));
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn empty_join() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 100]])
            .with_i64_rows("S", 2, vec![vec![5, 3]]);
        let r = selection_sum_impl(&q, &db, &Weights::identity(), 0, &FdSet::empty()).unwrap();
        assert!(r.is_none());
    }
}
