//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] schedules faults at named **sites** — fixed points
//! on the serving path that call [`trip`] every time they execute:
//!
//! | site | constant | where it fires |
//! |------|----------|----------------|
//! | `engine::prepare` | [`SITE_ENGINE_PREPARE`] | entry of [`Engine::prepare_pinned`](crate::Engine::prepare_pinned) |
//! | `lexda::build` | [`SITE_LEXDA_BUILD`] | entry of [`LexDirectAccess::build_on`](crate::LexDirectAccess::build_on) |
//! | `sumda::build` | [`SITE_SUMDA_BUILD`] | entry of [`SumDirectAccess::build_on`](crate::SumDirectAccess::build_on) |
//!
//! (`rda_serve` adds its own sites for in-flight pages and worker
//! death; any crate may define more — a site is just a string.)
//!
//! Each site keeps a monotone **hit counter** while a plan is armed,
//! and the plan maps `(site, nth hit)` to a [`FaultAction`]: panic,
//! delay, or a typed spurious failure ([`InjectedFault`]). Because the
//! schedule is keyed by hit index — not by wall clock or thread
//! timing — the exact same failure sequence replays on a 1-core CI
//! host as on a 64-core workstation, which is what makes recovery
//! *provable* rather than merely observed.
//!
//! Scheduling is either explicit ([`FaultPlan::inject`]) or derived
//! from a seed ([`FaultPlan::inject_seeded`]): the seed expands to
//! pseudo-random hit indices through splitmix64, so a chaos harness
//! can name an entire failure schedule with one number.
//!
//! The plan is installed process-globally ([`install`] returns an RAII
//! [`FaultGuard`]); when nothing is armed, [`trip`] is a single relaxed
//! atomic load. The hooks are compiled in unconditionally — they sit on
//! build/prepare paths, never on the per-answer access hot path — and
//! are intended for tests and the chaos bench harness only.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Fault site: entry of [`Engine::prepare_pinned`](crate::Engine::prepare_pinned).
pub const SITE_ENGINE_PREPARE: &str = "engine::prepare";
/// Fault site: entry of the lexicographic build kernel
/// ([`LexDirectAccess::build_on`](crate::LexDirectAccess::build_on)).
pub const SITE_LEXDA_BUILD: &str = "lexda::build";
/// Fault site: entry of the sum build kernel
/// ([`SumDirectAccess::build_on`](crate::SumDirectAccess::build_on)).
pub const SITE_SUMDA_BUILD: &str = "sumda::build";

/// What an armed fault does when its scheduled hit arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site — exercises panic fences, poison recovery,
    /// and worker respawn.
    Panic,
    /// Sleep for the given duration — exercises deadlines, queue
    /// backpressure, and retry backoff.
    Delay(Duration),
    /// Return a typed spurious failure ([`InjectedFault`]) — exercises
    /// error propagation without unwinding.
    Fail,
}

/// The typed error produced by [`FaultAction::Fail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: String,
    /// The site's hit index at which the schedule fired (0-based).
    pub hit: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for InjectedFault {}

/// A deterministic, per-site failure schedule.
///
/// Build one with explicit entries, seeded entries, or both; then arm
/// it with [`install`]. Every entry fires **at most once** — a schedule
/// is a finite script, so a chaos run always reaches a fault-free
/// steady state for its final oracle checks.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    schedule: HashMap<String, Vec<(u64, FaultAction)>>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (used by
    /// [`FaultPlan::inject_seeded`] to derive hit indices).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            schedule: HashMap::new(),
        }
    }

    /// An empty plan with seed 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at the `nth` hit (0-based) of `site`.
    pub fn inject(mut self, site: &str, nth: u64, action: FaultAction) -> Self {
        self.schedule
            .entry(site.to_string())
            .or_default()
            .push((nth, action));
        self
    }

    /// Schedule `count` occurrences of `action` at `site`, at
    /// pseudo-random hit indices in `[0, window)` derived from the
    /// plan's seed — the same seed always derives the same schedule.
    pub fn inject_seeded(
        mut self,
        site: &str,
        count: usize,
        window: u64,
        action: FaultAction,
    ) -> Self {
        let mut state = self
            .seed
            .wrapping_add(fnv1a(site.as_bytes()))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let entries = self.schedule.entry(site.to_string()).or_default();
        for _ in 0..count.min(window as usize) {
            loop {
                state = splitmix64(&mut state);
                let nth = state % window.max(1);
                if !entries.iter().any(|&(n, _)| n == nth) {
                    entries.push((nth, action));
                    break;
                }
            }
        }
        self
    }

    /// The scheduled (hit, action) pairs for `site`, in schedule order.
    pub fn scheduled(&self, site: &str) -> &[(u64, FaultAction)] {
        self.schedule.get(site).map_or(&[], Vec::as_slice)
    }

    /// Total number of scheduled faults across all sites.
    pub fn len(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// An armed plan plus its per-site hit counters.
struct Armed {
    plan: FaultPlan,
    counters: Mutex<HashMap<String, u64>>,
}

/// Cheap disarmed-path flag: [`trip`] is one relaxed load when clear.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<Armed>>> = RwLock::new(None);

/// Arm `plan` process-wide, replacing any armed plan. The returned
/// [`FaultGuard`] disarms on drop (including drop during a test
/// panic), so a failing chaos test cannot leak faults into the rest
/// of the suite. Tests that install plans must serialize with each
/// other — the registry is global.
#[must_use = "dropping the guard disarms the plan immediately"]
pub fn install(plan: FaultPlan) -> FaultGuard {
    let armed = Arc::new(Armed {
        plan,
        counters: Mutex::new(HashMap::new()),
    });
    *ACTIVE
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(armed);
    ANY_ARMED.store(true, Ordering::Release);
    FaultGuard(())
}

/// RAII handle for an armed [`FaultPlan`]; disarms on drop.
#[derive(Debug)]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ANY_ARMED.store(false, Ordering::Release);
        *ACTIVE
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// Pass through fault site `site`: count the hit and apply the armed
/// plan's scheduled action, if any.
///
/// Disarmed (the steady state), this is a single relaxed atomic load.
/// Armed, it may sleep ([`FaultAction::Delay`]), return a typed
/// [`InjectedFault`] ([`FaultAction::Fail`]), or panic
/// ([`FaultAction::Panic`]) — the caller's fences, not this function,
/// decide what a panic means.
pub fn trip(site: &str) -> Result<(), InjectedFault> {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let armed = {
        let guard = ACTIVE
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*guard {
            Some(a) => Arc::clone(a),
            None => return Ok(()),
        }
    };
    let entries = armed.plan.scheduled(site);
    if entries.is_empty() {
        return Ok(());
    }
    let hit = {
        let mut counters = armed
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let c = counters.entry(site.to_string()).or_insert(0);
        let hit = *c;
        *c += 1;
        hit
    };
    let Some(&(_, action)) = entries.iter().find(|&&(n, _)| n == hit) else {
        return Ok(());
    };
    match action {
        FaultAction::Panic => panic!("injected panic at {site} (hit {hit})"),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Fail => Err(InjectedFault {
            site: site.to_string(),
            hit,
        }),
    }
}

/// The number of times `site` has been hit under the currently armed
/// plan (0 when disarmed) — lets tests assert a schedule actually ran.
pub fn hits(site: &str) -> u64 {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return 0;
    }
    let guard = ACTIVE
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match &*guard {
        Some(a) => *a
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(site)
            .unwrap_or(&0),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; unit tests here serialize.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disarmed_trip_is_a_no_op() {
        let _s = SERIAL.lock().unwrap();
        assert_eq!(trip("anywhere"), Ok(()));
        assert_eq!(hits("anywhere"), 0);
    }

    #[test]
    fn scheduled_fail_fires_exactly_once_at_its_hit() {
        let _s = SERIAL.lock().unwrap();
        let _g = install(FaultPlan::new().inject("site", 1, FaultAction::Fail));
        assert_eq!(trip("site"), Ok(()), "hit 0 passes");
        assert_eq!(
            trip("site"),
            Err(InjectedFault {
                site: "site".to_string(),
                hit: 1
            })
        );
        assert_eq!(trip("site"), Ok(()), "hit 2 passes — the script ran out");
        assert_eq!(hits("site"), 3);
        assert_eq!(trip("other"), Ok(()), "unscheduled sites never fire");
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _s = SERIAL.lock().unwrap();
        {
            let _g = install(FaultPlan::new().inject("site", 0, FaultAction::Fail));
            assert!(trip("site").is_err());
        }
        assert_eq!(trip("site"), Ok(()));
    }

    #[test]
    fn scheduled_panic_panics_and_is_catchable() {
        let _s = SERIAL.lock().unwrap();
        let _g = install(FaultPlan::new().inject("boom", 0, FaultAction::Panic));
        let r = std::panic::catch_unwind(|| trip("boom"));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected panic at boom"), "{msg}");
    }

    #[test]
    fn seeded_schedules_replay_exactly() {
        let _s = SERIAL.lock().unwrap();
        let a = FaultPlan::seeded(42).inject_seeded("s", 5, 100, FaultAction::Panic);
        let b = FaultPlan::seeded(42).inject_seeded("s", 5, 100, FaultAction::Panic);
        assert_eq!(a.scheduled("s"), b.scheduled("s"));
        assert_eq!(a.len(), 5);
        let c = FaultPlan::seeded(43).inject_seeded("s", 5, 100, FaultAction::Panic);
        assert_ne!(a.scheduled("s"), c.scheduled("s"), "seed changes schedule");
        // Distinct hit indices: each scheduled fault fires at its own hit.
        let mut nths: Vec<u64> = a.scheduled("s").iter().map(|&(n, _)| n).collect();
        nths.sort_unstable();
        nths.dedup();
        assert_eq!(nths.len(), 5);
    }
}
