//! Cyclic-query support via tree decompositions (the paper's
//! "Applicability" paragraph): materialize each decomposition bag as the
//! join of its covering atoms — a non-linear preprocessing step bounded
//! by the decomposition width — and run the (acyclic) machinery on the
//! rewritten query.

use crate::error::BuildError;
use crate::instance::normalize_instance;
use rda_db::{Database, Relation, Tuple};
use rda_query::decompose::{decompose, TreeDecomposition};
use rda_query::query::{Atom, Cq};
use rda_query::VarId;
use std::collections::HashMap;

/// The result of rewriting a (possibly cyclic) query over an instance
/// into an acyclic query with one atom per decomposition bag.
#[derive(Debug, Clone)]
pub struct DecomposedInstance {
    /// The rewritten acyclic query (atoms `B0, B1, …`, same head and
    /// variable ids as the input).
    pub query: Cq,
    /// The database for [`DecomposedInstance::query`].
    pub db: Database,
    /// The decomposition used (width governs the materialization cost).
    pub decomposition: TreeDecomposition,
}

/// Rewrite `q` over `db` through a tree decomposition: each bag becomes
/// an atom whose relation is the join of the bag's covering atoms
/// projected onto the bag (cost O(nʷ) for width w). The rewritten query
/// is acyclic and has exactly the same answers.
///
/// Works for acyclic inputs too (width-1 bags), though it is only
/// *useful* when `q` is cyclic — acyclic queries should go straight to
/// the builders.
pub fn rewrite_by_decomposition(q: &Cq, db: &Database) -> Result<DecomposedInstance, BuildError> {
    let (nq, ndb) = normalize_instance(q, db)?;
    let td = decompose(&nq);

    // Every atom must be *enforced* somewhere, not merely covered:
    // assign each atom to the first bag containing it and semijoin the
    // bag's relation with it below.
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); td.bags.len()];
    for (ai, atom) in nq.atoms().iter().enumerate() {
        let home = td
            .bags
            .iter()
            .position(|b| atom.var_set().is_subset(b.vars))
            .expect("tree decompositions cover every atom");
        assigned[home].push(ai);
    }

    let mut atoms: Vec<Atom> = Vec::with_capacity(td.bags.len());
    let mut out = Database::new();
    for (i, bag) in td.bags.iter().enumerate() {
        let bag_vars: Vec<VarId> = bag.vars.iter().collect();
        // Join the covering atoms left-deep on shared variables.
        let mut acc_vars: Vec<VarId> = Vec::new();
        let mut acc: Option<Relation> = None;
        for &ai in &bag.cover {
            let atom = &nq.atoms()[ai];
            let rel = ndb
                .get(&atom.relation)
                .expect("normalized instance")
                .clone();
            match acc {
                None => {
                    acc_vars = atom.terms.clone();
                    acc = Some(rel);
                }
                Some(left) => {
                    let shared: Vec<VarId> = atom
                        .terms
                        .iter()
                        .copied()
                        .filter(|v| acc_vars.contains(v))
                        .collect();
                    let lk: Vec<usize> = shared
                        .iter()
                        .map(|v| acc_vars.iter().position(|u| u == v).expect("shared"))
                        .collect();
                    let rk: Vec<usize> = shared
                        .iter()
                        .map(|v| atom.terms.iter().position(|u| u == v).expect("shared"))
                        .collect();
                    let joined = left.join(format!("B{i}"), &lk, &rel, &rk);
                    for &t in &atom.terms {
                        if !acc_vars.contains(&t) {
                            acc_vars.push(t);
                        }
                    }
                    acc = Some(joined);
                }
            }
        }
        let joined = acc.expect("bags have non-empty covers");
        // Project onto the bag variables (sorted order).
        let positions: Vec<usize> = bag_vars
            .iter()
            .map(|v| {
                acc_vars
                    .iter()
                    .position(|u| u == v)
                    .expect("cover covers bag")
            })
            .collect();
        let mut bag_rel = joined.project(format!("B{i}"), &positions);
        // Enforce the constraints of every atom living in this bag.
        for &ai in &assigned[i] {
            let atom = &nq.atoms()[ai];
            let keys: Vec<usize> = atom
                .terms
                .iter()
                .map(|v| {
                    bag_vars
                        .iter()
                        .position(|u| u == v)
                        .expect("atom inside bag")
                })
                .collect();
            let other_keys: Vec<usize> = (0..atom.terms.len()).collect();
            let rel = ndb.get(&atom.relation).expect("normalized instance");
            bag_rel.semijoin(&keys, rel, &other_keys);
        }
        out.add(bag_rel);
        atoms.push(Atom {
            relation: format!("B{i}"),
            terms: bag_vars,
        });
    }

    let names: Vec<String> = (0..nq.var_count())
        .map(|i| nq.var_name(VarId(i as u32)).to_string())
        .collect();
    let query = Cq::from_parts(nq.name().to_string(), nq.free().to_vec(), atoms, names);
    debug_assert!(rda_query::gyo::is_acyclic(&query.hypergraph()));
    Ok(DecomposedInstance {
        query,
        db: out,
        decomposition: td,
    })
}

/// A decomposition-aware convenience: rewrite if cyclic, then build a
/// [`crate::LexDirectAccess`]. The extra materialization cost is the
/// paper-sanctioned price for cyclicity; FDs are not combined with
/// decomposition here (the FD-extension usually removes the cycle on
/// its own when it applies — see Example 8.3's triangle).
pub fn lex_direct_access_decomposed(
    q: &Cq,
    db: &Database,
    lex: &[VarId],
) -> Result<(crate::LexDirectAccess, Option<TreeDecomposition>), BuildError> {
    if rda_query::gyo::is_acyclic(&q.hypergraph()) {
        let da = crate::LexDirectAccess::build(q, db, lex, &rda_query::FdSet::empty())?;
        return Ok((da, None));
    }
    let dec = rewrite_by_decomposition(q, db)?;
    let da = crate::LexDirectAccess::build(&dec.query, &dec.db, lex, &rda_query::FdSet::empty())?;
    Ok((da, Some(dec.decomposition)))
}

/// Map answers of the rewritten query back to the original head order.
/// (Identity: the rewrite keeps head and variable ids; provided for
/// symmetry and future-proofing.)
pub fn restore_answer(_: &DecomposedInstance, answer: Tuple) -> Tuple {
    answer
}

/// Count distinct value combinations per bag, for width diagnostics.
pub fn bag_sizes(dec: &DecomposedInstance) -> HashMap<usize, usize> {
    dec.decomposition
        .bags
        .iter()
        .enumerate()
        .map(|(i, _)| (i, dec.db.get(&format!("B{i}")).map_or(0, Relation::len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::tup;
    use rda_query::parser::parse;

    fn triangle_db() -> Database {
        Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2], vec![2, 3], vec![5, 2], vec![9, 9]])
            .with_i64_rows("S", 2, vec![vec![2, 3], vec![3, 1], vec![9, 8]])
            .with_i64_rows("T", 2, vec![vec![3, 1], vec![1, 2], vec![3, 5]])
    }

    #[test]
    fn triangle_rewrite_preserves_answers() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
        let db = triangle_db();
        let dec = rewrite_by_decomposition(&q, &db).unwrap();
        assert!(rda_query::gyo::is_acyclic(&dec.query.hypergraph()));
        let mut expect = rda_baseline::all_answers(&q, &db);
        expect.sort();
        let mut got = rda_baseline::all_answers(&dec.query, &dec.db);
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(got, vec![tup![1, 2, 3], tup![2, 3, 1], tup![5, 2, 3]]);
    }

    #[test]
    fn triangle_direct_access_end_to_end() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
        let db = triangle_db();
        let lex = q.vars(&["x", "y", "z"]);
        // The plain builder refuses the cyclic query …
        assert!(crate::LexDirectAccess::build(&q, &db, &lex, &rda_query::FdSet::empty()).is_err());
        // … the decomposition-aware one succeeds.
        let (da, td) = lex_direct_access_decomposed(&q, &db, &lex).unwrap();
        assert!(td.is_some());
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, vec![tup![1, 2, 3], tup![2, 3, 1], tup![5, 2, 3]]);
        for (k, t) in got.iter().enumerate() {
            assert_eq!(da.inverted_access(t), Some(k as u64));
        }
    }

    #[test]
    fn four_cycle_end_to_end() {
        let q = parse("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d), U(d, a)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 2], vec![3, 4]])
            .with_i64_rows("S", 2, vec![vec![2, 5], vec![4, 6]])
            .with_i64_rows("T", 2, vec![vec![5, 7], vec![6, 8]])
            .with_i64_rows("U", 2, vec![vec![7, 1], vec![8, 9]]);
        // Which complete orders survive depends on the decomposition's
        // bags (they decide the rewritten query's neighbor structure):
        // <a,b,c,d> has a disruptive trio in the width-2 rewrite …
        let full = q.vars(&["a", "b", "c", "d"]);
        assert!(matches!(
            lex_direct_access_decomposed(&q, &db, &full),
            Err(BuildError::NotTractable(_))
        ));
        // … but the empty prefix (any-order direct access) always works.
        let (da, td) = lex_direct_access_decomposed(&q, &db, &[]).unwrap();
        assert!(td.is_some());
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], tup![1, 2, 5, 7]);
        assert_eq!(da.inverted_access(&got[0]), Some(0));
    }

    #[test]
    fn acyclic_passthrough_uses_no_decomposition() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5]])
            .with_i64_rows("S", 2, vec![vec![5, 3]]);
        let (da, td) = lex_direct_access_decomposed(&q, &db, &q.vars(&["x", "y", "z"])).unwrap();
        assert!(td.is_none());
        assert_eq!(da.len(), 1);
    }

    #[test]
    fn projections_still_need_free_connexity_after_rewrite() {
        // Rewriting cannot rescue a non-free-connex *projection*: bags
        // merge the cycle, but the head {x, z} of the 2-path stays hard
        // … unless the decomposition happens to cover it. The triangle
        // with head {x, z} becomes tractable because its single bag
        // covers everything.
        let q = parse("Q(x, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
        let db = triangle_db();
        let (da, _) = lex_direct_access_decomposed(&q, &db, &q.vars(&["x", "z"])).unwrap();
        let mut expect = rda_baseline::all_answers(&q, &db);
        expect.sort();
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn bag_sizes_reports_materialization_cost() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
        let dec = rewrite_by_decomposition(&q, &triangle_db()).unwrap();
        let sizes = bag_sizes(&dec);
        assert!(!sizes.is_empty());
        assert!(sizes.values().all(|&s| s <= 4 * 3)); // bounded by R ⋈ S
    }
}
