//! Selection by lexicographic orders (Section 6, Theorems 6.1/8.22).
//!
//! Tractable for *every* free-connex CQ — disruptive trios and
//! L-connexity do not matter when only one access is needed. The
//! algorithm (Lemma 6.6) assigns the order's variables one at a time:
//! it counts, for each value of the next variable, how many answers
//! agree with the assignment so far (Lemma 6.5's histogram, a counting
//! DP over a join tree), selects the value containing weighted rank `k`
//! without sorting (weighted selection), filters the relations, and
//! recurses. Each round is expected O(n) and there are constantly many
//! rounds, giving the paper's ⟨1, n⟩.

use crate::error::BuildError;
use crate::fdtransform::{check_fds, extend_instance};
use crate::instance::{normalize_instance, positions_of, reduce_to_full};
use rda_db::{Database, Relation, Tuple, Value};
use rda_orderstat::weighted_select;
use rda_query::classify::{classify, Problem, Verdict};
use rda_query::connex::complete_order;
use rda_query::fd::{fd_extension, fd_reordered_order, FdSet};
use rda_query::gyo;
use rda_query::query::Cq;
use rda_query::{VarId, VarSet};
use std::collections::HashMap;

/// Lemma 6.5: for each value `c` in the active domain of `var`, count the
/// answers of the full acyclic query (`atom_vars[i]`/`rels[i]`) that
/// assign `c` to `var`. Linear in the instance.
fn histogram(atom_vars: &[Vec<VarId>], rels: &[Relation], var: VarId) -> Vec<(Value, u64)> {
    let edges: Vec<VarSet> = atom_vars
        .iter()
        .map(|vs| vs.iter().copied().collect())
        .collect();
    let h = rda_query::hypergraph::Hypergraph::new(edges);
    let tree = gyo::join_tree(&h).expect("reduced query is acyclic");
    let root = atom_vars
        .iter()
        .position(|vs| vs.contains(&var))
        .expect("every free variable occurs in some reduced atom");
    let (parent, order) = tree.rooted_at(root);

    // Bottom-up counting DP: weight(t) = Π over children of the summed
    // weight of the child's agreeing tuples.
    let mut bucket_sums: Vec<HashMap<Tuple, u64>> = vec![HashMap::new(); rels.len()];
    let mut tuple_weights: Vec<Vec<u64>> = vec![Vec::new(); rels.len()];
    for &i in order.iter().rev() {
        let children: Vec<usize> = (0..rels.len()).filter(|&j| parent[j] == i).collect();
        let child_keys: Vec<(usize, Vec<usize>)> = children
            .iter()
            .map(|&c| {
                let shared: Vec<VarId> = atom_vars[c]
                    .iter()
                    .copied()
                    .filter(|v| atom_vars[i].contains(v))
                    .collect();
                (c, positions_of(&atom_vars[i], &shared))
            })
            .collect();
        let mut weights = Vec::with_capacity(rels[i].len());
        for t in rels[i].tuples() {
            let mut w: u64 = 1;
            for (c, key_pos) in &child_keys {
                let key = t.project(key_pos);
                w = w.saturating_mul(bucket_sums[*c].get(&key).copied().unwrap_or(0));
            }
            weights.push(w);
        }
        if parent[i] != usize::MAX {
            let shared: Vec<VarId> = atom_vars[i]
                .iter()
                .copied()
                .filter(|v| atom_vars[parent[i]].contains(v))
                .collect();
            let my_key = positions_of(&atom_vars[i], &shared);
            let mut sums: HashMap<Tuple, u64> = HashMap::new();
            for (t, &w) in rels[i].tuples().iter().zip(&weights) {
                *sums.entry(t.project(&my_key)).or_insert(0) += w;
            }
            bucket_sums[i] = sums;
        }
        tuple_weights[i] = weights;
    }

    // Aggregate root weights per value of `var`.
    let vp = atom_vars[root]
        .iter()
        .position(|&v| v == var)
        .expect("var in root");
    let mut counts: HashMap<Value, u64> = HashMap::new();
    for (t, &w) in rels[root].tuples().iter().zip(&tuple_weights[root]) {
        *counts.entry(t[vp].clone()).or_insert(0) += w;
    }
    counts.into_iter().collect()
}

/// Head positions realizing the completed internal order for comparing
/// answers, or `None` when the restriction to head variables is not
/// sound.
///
/// Restricting the completed order to the original head variables
/// induces the same total order on answers **iff** every promoted
/// (FD-implied) variable follows one of its determiners in the
/// completed order: then two answers that agree on everything before a
/// promoted variable agree on the promoted variable too, so answers
/// can never differ first at a skipped position. `fd_reordered_order`
/// guarantees this inside the requested prefix, but the completion
/// tail orders variables with no FD awareness, so out-of-prefix
/// promotions can violate it.
pub(crate) fn comparator_positions(
    q: &Cq,
    lex: &[VarId],
    fds: &FdSet,
) -> Result<Option<Vec<usize>>, BuildError> {
    crate::lexda::validate_lex(q, lex)?;
    let nq = crate::instance::normalize_query(q);
    let ext = fd_extension(&nq, fds);
    let l_plus = fd_reordered_order(&ext, lex);
    let order = complete_over_free(&ext.query, &l_plus);

    let original_free = nq.free_set();
    let mut seen = VarSet::EMPTY;
    for &v in &order {
        if !original_free.contains(v) {
            // Promoted variable: sound only if some determiner of `v`
            // already occurred (induction: earlier agreement implies
            // agreement on `v`).
            let determined = ext
                .fds
                .iter()
                .any(|fd| fd.rhs == v && seen.contains(fd.lhs));
            if !determined {
                return Ok(None);
            }
        }
        seen = seen.with(v);
    }
    Ok(Some(
        order
            .iter()
            .filter_map(|v| nq.free().iter().position(|f| f == v))
            .collect(),
    ))
}

/// Complete the (FD-reordered) prefix over all of `free(Q⁺)`: the
/// Lemma 4.4 completion when a trio-free one exists (so results agree
/// with `LexDirectAccess`), otherwise the remaining variables in VarId
/// order. The single definition keeps [`comparator_positions`] and
/// [`selection_lex_impl`] sorting by the same total order.
fn complete_over_free(qp: &Cq, l_plus: &[VarId]) -> Vec<VarId> {
    complete_order(qp, l_plus).unwrap_or_else(|| {
        let mut o = l_plus.to_vec();
        let placed: VarSet = o.iter().copied().collect();
        o.extend(qp.free_set().minus(placed).iter());
        o
    })
}

/// Theorem 6.1 / 8.22: the answer of `q` over `db` at index `k` when
/// the answers are sorted by the (possibly partial) lexicographic order
/// `lex` (ties broken by a fixed completion of the order), or
/// `Ok(None)` ("out-of-bound") when `k ≥ |Q(I)|`. Expected O(n) per
/// call, nothing cached — the raw operation behind the engine's
/// [`crate::SelectionLexHandle`], which is the public route to it.
pub(crate) fn selection_lex_impl(
    q: &Cq,
    db: &Database,
    lex: &[VarId],
    k: u64,
    fds: &FdSet,
) -> Result<Option<Tuple>, BuildError> {
    crate::lexda::validate_lex(q, lex)?;
    if !fds.is_empty() && !q.is_self_join_free() {
        return Err(BuildError::InvalidOrder(
            "functional dependencies require a self-join-free query".to_string(),
        ));
    }
    match classify(q, fds, &Problem::SelectionLex(lex.to_vec())) {
        Verdict::Tractable { .. } => {}
        v => return Err(BuildError::NotTractable(v)),
    }

    let (nq, ndb) = normalize_instance(q, db)?;
    check_fds(&nq, &ndb, fds)?;
    let ext = fd_extension(&nq, fds);
    let idb = extend_instance(&ext, &ndb)?;
    let qp = ext.query.clone();
    let l_plus = fd_reordered_order(&ext, lex);

    let red =
        reduce_to_full(&qp, &idb).expect("classification guarantees the extension is free-connex");
    if red.known_empty {
        return Ok(None);
    }

    // Complete the order over all free variables (selection does not
    // need trio-freeness).
    let order = complete_over_free(&qp, &l_plus);

    if order.is_empty() {
        // Boolean query with a non-empty join.
        return Ok((k == 0).then(|| Tuple::new(vec![])));
    }

    let atom_vars: Vec<Vec<VarId>> = red.query.atoms().iter().map(|a| a.terms.clone()).collect();
    let mut rels: Vec<Relation> = red
        .query
        .atoms()
        .iter()
        .map(|a| {
            red.db
                .get(&a.relation)
                .expect("reduced relation exists")
                .clone()
        })
        .collect();

    let mut k = k;
    let mut assignment: Vec<Option<Value>> = vec![None; qp.var_count()];
    for &v in &order {
        let counts = histogram(&atom_vars, &rels, v);
        let Some((idx, before)) = weighted_select(&counts, k, Value::cmp) else {
            return Ok(None); // k out of bounds (only possible on round one)
        };
        let value = counts[idx].0.clone();
        k -= before;
        assignment[v.index()] = Some(value.clone());
        for (vs, rel) in atom_vars.iter().zip(rels.iter_mut()) {
            if let Some(p) = vs.iter().position(|&u| u == v) {
                *rel = rel.select_eq(p, &value);
            }
        }
    }

    Ok(Some(
        q.free()
            .iter()
            .map(|v| {
                assignment[v.index()]
                    .clone()
                    .expect("all free variables assigned")
            })
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_db::tup;
    use rda_query::parser::parse;

    fn fig2_db() -> Database {
        Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
            .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
    }

    fn sel(q: &Cq, db: &Database, lex: &[&str], k: u64) -> Option<Tuple> {
        selection_lex_impl(q, db, &q.vars(lex), k, &FdSet::empty()).unwrap()
    }

    #[test]
    fn figure_2b_all_ranks() {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let expect = [
            tup![1, 2, 5],
            tup![1, 5, 3],
            tup![1, 5, 4],
            tup![1, 5, 6],
            tup![6, 2, 5],
        ];
        for (k, e) in expect.iter().enumerate() {
            assert_eq!(
                sel(&q, &fig2_db(), &["x", "y", "z"], k as u64).as_ref(),
                Some(e)
            );
        }
        assert_eq!(sel(&q, &fig2_db(), &["x", "y", "z"], 5), None);
    }

    #[test]
    fn figure_2c_trio_order_still_selectable() {
        // <x, z, y> has a disruptive trio — direct access is hard, but
        // selection works (Example 1.1). Expected order from Figure 2c.
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        // Figure 2c lists answers by <x, z, y>:
        // (1,3,5) -> (x,y,z) = (1,5,3)
        // (1,4,5) -> (1,5,4)
        // (1,5,2) -> (1,2,5)
        // (1,6,5) -> (1,5,6)
        // (6,5,2) -> (6,2,5)
        let expect = [
            tup![1, 5, 3],
            tup![1, 5, 4],
            tup![1, 2, 5],
            tup![1, 5, 6],
            tup![6, 2, 5],
        ];
        for (k, e) in expect.iter().enumerate() {
            assert_eq!(
                sel(&q, &fig2_db(), &["x", "z", "y"], k as u64).as_ref(),
                Some(e),
                "k={k}"
            );
        }
    }

    #[test]
    fn partial_order_not_l_connex_still_selectable() {
        // <x, z> is not L-connex; selection remains tractable.
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let first = sel(&q, &fig2_db(), &["x", "z"], 0).unwrap();
        assert_eq!((first[0].clone(), first[2].clone()), (1.into(), 3.into()));
    }

    #[test]
    fn median_of_projection_query() {
        let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        // Answers: (1,2), (1,5), (6,2).
        assert_eq!(sel(&q, &fig2_db(), &["x", "y"], 1), Some(tup![1, 5]));
    }

    #[test]
    fn non_free_connex_rejected() {
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let r = selection_lex_impl(&q, &fig2_db(), &q.vars(&["x", "z"]), 0, &FdSet::empty());
        assert!(matches!(r, Err(BuildError::NotTractable(_))));
    }

    #[test]
    fn fd_unlocks_selection() {
        // Example 8.3: Q(x,z) :- R(x,y), S(y,z) with S: y → z becomes
        // free-connex.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20], vec![2, 10]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 8]]);
        // Answers: (1,7), (2,8), (2,7); by <x,z>: (1,7), (2,7), (2,8).
        let lex = q.vars(&["x", "z"]);
        let got: Vec<Tuple> = (0..3)
            .map(|k| selection_lex_impl(&q, &db, &lex, k, &fds).unwrap().unwrap())
            .collect();
        assert_eq!(got, vec![tup![1, 7], tup![2, 7], tup![2, 8]]);
        assert_eq!(selection_lex_impl(&q, &db, &lex, 3, &fds).unwrap(), None);
    }

    #[test]
    fn boolean_query_selection() {
        let q = parse("Q() :- R(x, y), S(y, z)").unwrap();
        assert_eq!(sel(&q, &fig2_db(), &[], 0), Some(Tuple::new(vec![])));
        assert_eq!(sel(&q, &fig2_db(), &[], 1), None);
    }
}
