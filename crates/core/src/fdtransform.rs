//! Instance-level FD-extension (Section 8, Lemma 8.5's forward
//! reduction): transform a database satisfying unary FDs `Δ` into one
//! for the extended query `Q⁺` with the same answers (restricted to the
//! original free variables).

use crate::error::BuildError;
use rda_db::{Database, Relation, Tuple, Value};
use rda_query::fd::{ExtensionStep, Fd, FdExtension, FdSet};
use rda_query::query::Cq;
use std::collections::HashMap;

/// Check that `db` satisfies every FD in `fds` (the paper's promise on
/// inputs). `q` must be normalized.
pub fn check_fds(q: &Cq, db: &Database, fds: &FdSet) -> Result<(), BuildError> {
    for fd in fds.iter() {
        let atom = q
            .atoms()
            .iter()
            .find(|a| a.relation == fd.relation)
            .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
        let rel = db
            .get(&fd.relation)
            .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
        let lp = atom.position_of(fd.lhs).expect("FD lhs occurs in atom");
        let rp = atom.position_of(fd.rhs).expect("FD rhs occurs in atom");
        let mut seen: HashMap<Value, Value> = HashMap::new();
        for t in rel.tuples() {
            match seen.entry(t[lp].clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(t[rp].clone());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != &t[rp] {
                        return Err(BuildError::FdViolated(fd.clone()));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Replay the FD-extension steps on the instance: produce a database for
/// `Q⁺` such that `Q⁺(I⁺)` equals `Q(I)` extended with the uniquely
/// determined values of the promoted variables (Lemma 8.5). Tuples whose
/// determining value never occurs in the FD's relation are dangling and
/// are dropped.
///
/// `q` and `db` must be normalized and `db` must satisfy the FDs
/// ([`check_fds`]).
pub fn extend_instance(ext: &FdExtension, db: &Database) -> Result<Database, BuildError> {
    let mut out = db.clone();
    // Evolving schemas: relation name -> term list, starting from the
    // original atoms and growing exactly as fd_extension grew them.
    let mut schema: HashMap<String, Vec<rda_query::VarId>> = ext
        .original
        .atoms()
        .iter()
        .map(|a| (a.relation.clone(), a.terms.clone()))
        .collect();

    for step in &ext.steps {
        let ExtensionStep::ExtendAtom { atom, added, via } = step else {
            continue; // PromoteVar has no instance effect.
        };
        let lookup = build_lookup(&schema, &out, via)?;
        let terms = schema
            .get_mut(atom)
            .expect("extension step names a known atom");
        let lp = terms
            .iter()
            .position(|&t| t == via.lhs)
            .expect("target atom contains the FD's lhs");
        terms.push(*added);
        let rel = out
            .get(atom)
            .expect("normalized instance has all relations");
        let mut tuples: Vec<Tuple> = Vec::with_capacity(rel.len());
        for t in rel.tuples() {
            if let Some(rhs) = lookup.get(&t[lp]) {
                tuples.push(t.iter().cloned().chain([rhs.clone()]).collect());
            }
            // else: dangling tuple, dropped.
        }
        let mut new_rel = Relation::from_tuples(atom.clone(), rel.arity() + 1, tuples);
        new_rel.normalize();
        out.add(new_rel);
    }
    Ok(out)
}

/// Build the `lhs value → rhs value` map of an FD from its relation's
/// current contents.
fn build_lookup(
    schema: &HashMap<String, Vec<rda_query::VarId>>,
    db: &Database,
    fd: &Fd,
) -> Result<HashMap<Value, Value>, BuildError> {
    let terms = schema
        .get(&fd.relation)
        .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
    let lp = terms
        .iter()
        .position(|&t| t == fd.lhs)
        .expect("FD lhs in relation schema");
    let rp = terms
        .iter()
        .position(|&t| t == fd.rhs)
        .expect("FD rhs in relation schema");
    let rel = db
        .get(&fd.relation)
        .ok_or_else(|| BuildError::MissingRelation(fd.relation.clone()))?;
    let mut map = HashMap::with_capacity(rel.len());
    for t in rel.tuples() {
        if let Some(prev) = map.insert(t[lp].clone(), t[rp].clone()) {
            if prev != t[rp] {
                return Err(BuildError::FdViolated(fd.clone()));
            }
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_query::fd::fd_extension;
    use rda_query::parser::parse;

    #[test]
    fn example_8_3_instance_transform() {
        // Q(x,z) :- R(x,y), S(y,z) with S: y → z. R gains a z column
        // looked up from S.
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20], vec![3, 99]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![20, 8]]);
        check_fds(&q, &db, &fds).unwrap();
        let ext = fd_extension(&q, &fds);
        let out = extend_instance(&ext, &db).unwrap();
        let r = out.get("R").unwrap();
        assert_eq!(r.arity(), 3);
        // (3, 99) is dangling (99 not in S) and dropped.
        assert_eq!(r.len(), 2);
        assert!(r
            .tuples()
            .iter()
            .any(|t| t.values() == [1.into(), 10.into(), 7.into()]));
        assert!(r
            .tuples()
            .iter()
            .any(|t| t.values() == [2.into(), 20.into(), 8.into()]));
    }

    #[test]
    fn violation_detected() {
        let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "y", "z")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10]])
            .with_i64_rows("S", 2, vec![vec![10, 7], vec![10, 8]]);
        assert!(matches!(
            check_fds(&q, &db, &fds),
            Err(BuildError::FdViolated(_))
        ));
    }

    #[test]
    fn chained_extensions_replay_in_order() {
        // Q(a) :- R(a, b), S(b, c) with R: a → b and S: b → c.
        // R first gains c via the (derived) chain.
        let q = parse("Q(a) :- R(a, b), S(b, c)").unwrap();
        let fds = FdSet::parse(&q, &[("S", "b", "c")]);
        let db = Database::new()
            .with_i64_rows("R", 2, vec![vec![1, 10], vec![2, 20]])
            .with_i64_rows("S", 2, vec![vec![10, 100], vec![20, 200]]);
        let ext = fd_extension(&q, &fds);
        let out = extend_instance(&ext, &db).unwrap();
        let r = out.get("R").unwrap();
        assert_eq!(r.arity(), 3);
        assert!(r
            .tuples()
            .iter()
            .any(|t| t.values() == [1.into(), 10.into(), 100.into()]));
    }

    #[test]
    fn no_steps_is_identity() {
        let q = parse("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
        let ext = fd_extension(&q, &FdSet::empty());
        assert_eq!(extend_instance(&ext, &db).unwrap(), db);
    }
}
