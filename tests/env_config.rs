//! `RDA_FORCE_SHARDS` parsing, end to end. Misconfiguration must be a
//! *typed* outcome — never a panic, never a silent shard count of 0:
//!
//! * [`ShardSpec::from_env_checked`] is the strict reading: unset is
//!   `Ok(None)`, a positive integer is `Ok(Some(Forced(n)))`, and
//!   garbage or zero is a [`ShardConfigError`] naming the value.
//! * [`ShardSpec::from_env`] is the lenient reading the infallible
//!   constructors use: misconfiguration degrades to "unsharded".
//! * [`Engine::open`] — the cold-start path, where a silently ignored
//!   config would be operator-hostile — uses the strict reading and
//!   fails loudly with [`OpenError::ShardConfig`].
//!
//! Env vars are process-global, so this file is its own test binary and
//! every test holds one mutex and restores the variable on exit.

use ranked_access::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

const VAR: &str = "RDA_FORCE_SHARDS";

/// Serialize the tests and restore the caller's value afterwards (CI
/// runs this suite both with and without the variable set).
struct EnvGuard {
    saved: Option<String>,
    _lock: MutexGuard<'static, ()>,
}

impl EnvGuard {
    fn lock() -> EnvGuard {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        EnvGuard {
            saved: std::env::var(VAR).ok(),
            _lock: lock,
        }
    }

    fn set(&self, v: &str) {
        std::env::set_var(VAR, v);
    }

    fn unset(&self) {
        std::env::remove_var(VAR);
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.saved {
            Some(v) => std::env::set_var(VAR, v),
            None => std::env::remove_var(VAR),
        }
    }
}

#[test]
fn strict_parsing_is_typed_and_never_panics() {
    let g = EnvGuard::lock();

    g.unset();
    assert!(matches!(ShardSpec::from_env_checked(), Ok(None)));

    g.set("3");
    assert!(matches!(
        ShardSpec::from_env_checked(),
        Ok(Some(ShardSpec::Forced(3)))
    ));

    // Surrounding whitespace is operator noise, not an error.
    g.set(" 5 ");
    assert!(matches!(
        ShardSpec::from_env_checked(),
        Ok(Some(ShardSpec::Forced(5)))
    ));

    // Zero shards is meaningless and must be its own typed error.
    g.set("0");
    let err = ShardSpec::from_env_checked().unwrap_err();
    assert!(matches!(err, ShardConfigError::Zero));
    assert!(err.to_string().contains("shard count must be >= 1"));

    // Garbage names the offending value in the error.
    for bad in ["banana", "", "-2", "3.5", "0x10", "1 2"] {
        g.set(bad);
        let err = ShardSpec::from_env_checked().unwrap_err();
        match &err {
            ShardConfigError::NotANumber(s) => {
                assert_eq!(s, bad.trim(), "the error carries the raw value");
            }
            other => panic!("{bad:?}: expected NotANumber, got {other:?}"),
        }
        assert!(err.to_string().contains("RDA_FORCE_SHARDS"));
    }
}

#[test]
fn lenient_reading_degrades_to_unsharded() {
    let g = EnvGuard::lock();
    g.set("not-a-number");
    assert_eq!(ShardSpec::from_env(), None, "garbage degrades");
    g.set("0");
    assert_eq!(ShardSpec::from_env(), None, "zero degrades");
    g.set("7");
    assert_eq!(ShardSpec::from_env(), Some(ShardSpec::Forced(7)));
    g.unset();
    assert_eq!(ShardSpec::from_env(), None);
}

#[test]
fn infallible_constructors_tolerate_garbage_but_cold_open_fails_loudly() {
    let g = EnvGuard::lock();
    let dir = std::env::temp_dir().join(format!("rda-env-open-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 2], vec![3, 4]])
        .freeze();
    SnapshotStore::create(&dir, &snap).unwrap();

    g.set("certainly-not-a-number");
    // The in-process constructor path stays infallible: a bad value
    // means "unsharded", and serving proceeds.
    let engine = Engine::new(
        Database::new()
            .with_i64_rows("R", 1, vec![vec![1]])
            .freeze(),
    );
    assert_eq!(engine.shard_count(), 1);
    // Cold open is where an ignored config would silently change a
    // restarted deployment, so it surfaces the typed error instead.
    match Engine::open(&dir) {
        Err(OpenError::ShardConfig(ShardConfigError::NotANumber(s))) => {
            assert_eq!(s, "certainly-not-a-number");
        }
        other => panic!("expected OpenError::ShardConfig, got {other:?}"),
    }

    g.set("0");
    assert!(matches!(
        Engine::open(&dir),
        Err(OpenError::ShardConfig(ShardConfigError::Zero))
    ));

    // With a sane value the very same store cold-opens sharded.
    g.set("3");
    let engine = Engine::open(&dir).unwrap();
    assert_eq!(engine.shard_count(), 3);
    assert_eq!(engine.snapshot().uid(), snap.uid());

    // And a missing store is a persistence error, not a config one.
    g.unset();
    let missing = dir.join("definitely-absent");
    assert!(matches!(
        Engine::open(&missing),
        Err(OpenError::Persist(PersistError::Io(_)))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
