//! Edge cases and failure injection across the public API: degenerate
//! instances, mixed value types, deep structures, and every error path.

use ranked_access::prelude::*;

fn no_fds() -> FdSet {
    FdSet::empty()
}

#[test]
fn single_tuple_universe() {
    let q = parse("Q(x) :- R(x)").unwrap();
    let db = Database::new().with_i64_rows("R", 1, vec![vec![42]]);
    let plan = Engine::new(db.freeze())
        .prepare(&q, OrderSpec::lex(&q, &["x"]), &no_fds(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert_eq!(plan.len(), 1);
    assert_eq!(plan.access(0).unwrap().values(), &[Value::int(42)]);
    assert_eq!(plan.access(1), None);
}

#[test]
fn empty_relations_everywhere() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, vec![])
        .with_i64_rows("S", 2, vec![]);
    // Every route the engine can take agrees the answer set is empty.
    for spec in [
        OrderSpec::lex(&q, &["x", "y", "z"]), // native direct access
        OrderSpec::lex(&q, &["x", "z", "y"]), // selection-lex handle
        OrderSpec::sum_by_value(),            // selection-sum handle
    ] {
        let plan = Engine::new(db.clone().freeze())
            .prepare(&q, spec, &no_fds(), Policy::Reject)
            .unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.access(0), None);
    }
    let sda = SumDirectAccess::build(
        &parse("Q(x, y) :- R(x, y)").unwrap(),
        &db,
        &Weights::identity(),
        &no_fds(),
    )
    .unwrap();
    assert!(sda.is_empty());
}

#[test]
fn mixed_value_types_order_consistently() {
    // Integers sort before strings (the documented domain order).
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let mut rel = Relation::new("R", 2);
    rel.insert([Value::str("apple"), Value::int(1)].into_iter().collect());
    rel.insert([Value::int(9), Value::int(2)].into_iter().collect());
    rel.insert([Value::str("zebra"), Value::int(3)].into_iter().collect());
    let db = Database::new().with(rel);
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x"]), &no_fds()).unwrap();
    let xs: Vec<Value> = da.iter().map(|t| t.values()[0].clone()).collect();
    assert_eq!(
        xs,
        vec![Value::int(9), Value::str("apple"), Value::str("zebra")]
    );
}

#[test]
fn negative_and_extreme_integers() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let db = Database::new().with_i64_rows(
        "R",
        2,
        vec![
            vec![i64::MIN, 0],
            vec![i64::MAX, 0],
            vec![0, 0],
            vec![-1, 0],
        ],
    );
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x"]), &no_fds()).unwrap();
    let xs: Vec<i64> = da.iter().map(|t| t.values()[0].as_int().unwrap()).collect();
    assert_eq!(xs, vec![i64::MIN, -1, 0, i64::MAX]);
}

#[test]
fn duplicate_input_tuples_are_set_semantics() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 2]; 10])
        .with_i64_rows("S", 2, vec![vec![2, 3]; 7]);
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &no_fds()).unwrap();
    assert_eq!(da.len(), 1);
}

#[test]
fn deep_star_query() {
    // Star with 6 rays: tests many-children layers in the DP.
    let q = parse(
        "Q(c, a1, a2, a3, a4, a5, a6) :- R1(c, a1), R2(c, a2), R3(c, a3), R4(c, a4), R5(c, a5), R6(c, a6)",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 1..=6 {
        db.add(Relation::from_tuples(
            format!("R{i}"),
            2,
            vec![
                [Value::int(0), Value::int(i)].into_iter().collect(),
                [Value::int(0), Value::int(i + 10)].into_iter().collect(),
                [Value::int(1), Value::int(i)].into_iter().collect(),
            ],
        ));
    }
    let lex = q.vars(&["c", "a1", "a2", "a3", "a4", "a5", "a6"]);
    let da = LexDirectAccess::build(&q, &db, &lex, &no_fds()).unwrap();
    // c = 0 contributes 2^6 combinations, c = 1 contributes 1.
    assert_eq!(da.len(), 64 + 1);
    let mid = da.access(32).unwrap();
    assert_eq!(da.inverted_access(&mid), Some(32));
    let last = da.access(64).unwrap();
    assert_eq!(last.values()[0], Value::int(1));
}

#[test]
fn long_path_query() {
    // 6-path: layered tree with a long chain of layers.
    let q = parse(
        "Q(v0, v1, v2, v3, v4, v5, v6) :- E1(v0, v1), E2(v1, v2), E3(v2, v3), E4(v3, v4), E5(v4, v5), E6(v5, v6)",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 1..=6 {
        db.add(Relation::from_tuples(
            format!("E{i}"),
            2,
            (0..3i64)
                .flat_map(|a| {
                    (0..3i64).map(move |b| [Value::int(a), Value::int(b)].into_iter().collect())
                })
                .collect(),
        ));
    }
    let lex = q.vars(&["v0", "v1", "v2", "v3", "v4", "v5", "v6"]);
    let da = LexDirectAccess::build(&q, &db, &lex, &no_fds()).unwrap();
    assert_eq!(da.len(), 3u64.pow(7));
    // Spot-check order monotonicity at a few indices.
    let probes = [0u64, 1, 100, 1000, da.len() - 2, da.len() - 1];
    for w in probes.windows(2) {
        assert!(da.access(w[0]).unwrap() <= da.access(w[1]).unwrap());
    }
}

#[test]
fn error_paths_are_reported() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    // Missing relation.
    let empty = Database::new();
    assert!(matches!(
        LexDirectAccess::build(&q, &empty, &q.vars(&["x"]), &no_fds()),
        Err(BuildError::MissingRelation(_))
    ));
    // Arity mismatch.
    let bad = Database::new().with_i64_rows("R", 3, vec![vec![1, 2, 3]]);
    assert!(matches!(
        LexDirectAccess::build(&q, &bad, &q.vars(&["x"]), &no_fds()),
        Err(BuildError::ArityMismatch { .. })
    ));
    // Errors render human-readably.
    let err = LexDirectAccess::build(&q, &empty, &q.vars(&["x"]), &no_fds()).unwrap_err();
    assert!(err.to_string().contains("missing"));
}

#[test]
fn fd_with_self_join_is_rejected_not_panicking() {
    let q = parse("Q(x, y, z) :- R(x, y), R(y, z)").unwrap();
    let db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
    // Fake FD set referencing the first occurrence.
    let fds = FdSet::parse(&q, &[("R", "x", "y")]);
    assert!(matches!(
        LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &fds),
        Err(BuildError::InvalidOrder(_))
    ));
}

#[test]
fn string_heavy_workload() {
    let q = parse("Q(a, b) :- R(a, b), S(b)").unwrap();
    let words = ["delta", "alpha", "echo", "bravo", "charlie"];
    let mut r = Relation::new("R", 2);
    for (i, w) in words.iter().enumerate() {
        for (j, v) in words.iter().enumerate() {
            if (i + j) % 2 == 0 {
                r.insert([Value::str(*w), Value::str(*v)].into_iter().collect());
            }
        }
    }
    let mut s = Relation::new("S", 1);
    for w in ["alpha", "charlie", "echo"] {
        s.insert([Value::str(w)].into_iter().collect());
    }
    let db = Database::new().with(r).with(s);
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["b", "a"]), &no_fds()).unwrap();
    let mut expect = all_answers(&q, &db);
    expect.sort_by(|x, y| (x[1].clone(), x[0].clone()).cmp(&(y[1].clone(), y[0].clone())));
    let got: Vec<Tuple> = da.iter().collect();
    assert_eq!(got, expect);
}

#[test]
fn quantile_trait_is_usable_through_prelude() {
    use ranked_access::rda_core::Quantiles;
    let q = parse("Q(x) :- R(x)").unwrap();
    let db = Database::new().with_i64_rows("R", 1, (0..101).map(|i| vec![i]).collect::<Vec<_>>());
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x"]), &no_fds()).unwrap();
    assert_eq!(da.median().unwrap().values()[0], Value::int(50));
    assert_eq!(da.quantile(0.25).unwrap().values()[0], Value::int(25));
    let lo: Tuple = [Value::int(10)].into_iter().collect();
    let hi: Tuple = [Value::int(20)].into_iter().collect();
    assert_eq!(da.range_count(&lo, &hi), Some(10));
}

/// Degenerate window shapes on every backend the router serves:
/// `top_k(0)`, pages starting at or past the end, ranges beyond the
/// answer count, and streams resumed exactly at `len()`. All must
/// return cleanly empty results — never panic, never wrap, never
/// over-fetch.
#[test]
fn window_edges_top_k_zero_pages_past_end_stream_at_len() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qcov = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let qproj = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
        .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
    let engine = Engine::new(db.freeze());
    let plans = vec![
        engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &["x", "y", "z"]),
                &no_fds(),
                Policy::Reject,
            )
            .unwrap(), // native lex
        engine
            .prepare(&qcov, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
            .unwrap(), // native sum
        engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &["x", "z", "y"]),
                &no_fds(),
                Policy::Reject,
            )
            .unwrap(), // lazy lex selection
        engine
            .prepare(&q, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
            .unwrap(), // lazy sum selection
        engine
            .prepare(
                &qproj,
                OrderSpec::lex(&qproj, &["x", "z"]),
                &no_fds(),
                Policy::Materialize,
            )
            .unwrap(), // materialized fallback
    ];
    for plan in &plans {
        let len = plan.len();
        let backend = plan.backend();
        assert!(len > 0, "{backend}: non-degenerate fixture");

        assert_eq!(plan.top_k(0), Vec::<Tuple>::new(), "{backend}: top_k(0)");
        let mut buf = WindowBuf::new();
        buf.push_tuple(&plan.access(0).unwrap()); // pre-dirty the buffer
        assert_eq!(plan.window_into(0..0, &mut buf), 0, "{backend}");
        assert!(buf.is_empty(), "{backend}: empty refill clears the buffer");

        // Pages starting at the end, fully past it, and overflowing.
        assert_eq!(
            plan.page(len, 3),
            Vec::<Tuple>::new(),
            "{backend}: page at len"
        );
        assert_eq!(
            plan.page(len + 10, 3),
            Vec::<Tuple>::new(),
            "{backend}: page past end"
        );
        assert_eq!(
            plan.page(u64::MAX, 5),
            Vec::<Tuple>::new(),
            "{backend}: page at u64::MAX"
        );
        assert_eq!(
            plan.access_range(len..len + 4),
            Vec::<Tuple>::new(),
            "{backend}"
        );
        // A window straddling the end is clamped, not truncated to
        // nothing.
        assert_eq!(
            plan.access_range(len - 1..len + 4),
            vec![plan.access(len - 1).unwrap()],
            "{backend}: straddling window clamps"
        );

        // Streams resumed at (and past) the end are immediately done;
        // resumed one before the end, they yield exactly the last row.
        let mut at_end = plan.stream_from(len);
        assert_eq!(at_end.next(), None, "{backend}: stream at len()");
        let mut past_end = plan.stream_from(len + 7);
        assert_eq!(past_end.next(), None, "{backend}: stream past len()");
        let tail: Vec<Tuple> = plan.stream_from(len - 1).collect();
        assert_eq!(tail, vec![plan.access(len - 1).unwrap()], "{backend}");
    }
}

#[test]
fn weights_on_shared_variable_count_once() {
    // x + y + z with the join variable y weighted: each answer counts
    // y exactly once even though y appears in two atoms.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![0, 100]])
        .with_i64_rows("S", 2, vec![vec![100, 0]]);
    let plan = Engine::new(db.freeze())
        .prepare(&q, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
        .unwrap();
    let RankedAnswers::SelectionSum(handle) = plan.answers() else {
        panic!("routed to {}", plan.backend());
    };
    let (w, _) = handle.access_weighted(0).unwrap();
    assert_eq!(w, TotalF64(100.0));
}

#[test]
fn max_variable_count_boundary() {
    // 20 variables in one atom: stresses VarSet and the layer chain.
    let names: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let q = CqBuilder::new("Q").head(&refs).atom("R", &refs).build();
    let rows: Vec<Tuple> = (0..5i64)
        .map(|r| (0..20).map(|c| Value::int((r + c) % 7)).collect())
        .collect();
    let db = Database::new().with(Relation::from_tuples("R", 20, rows));
    let da = LexDirectAccess::build(&q, &db, &q.vars(&refs), &no_fds()).unwrap();
    assert_eq!(da.len(), 5);
    for k in 0..5 {
        let t = da.access(k).unwrap();
        assert_eq!(da.inverted_access(&t), Some(k));
    }
}

// ─────────────────────── shard-boundary edges ───────────────────────

/// Seven forced shards over a two-value domain: most shards own no
/// rows at all, and the router must hop them invisibly on every
/// surface.
#[test]
fn empty_shards_are_served_transparently() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2], vec![2, 1]]);
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(7));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    let routing = plan.explain().routing().unwrap();
    assert_eq!(routing.shards(), 7);
    assert!(
        (0..7).filter(|&s| routing.shard_rows(s) == 0).count() >= 5,
        "a 2-value domain cannot populate 7 shards"
    );
    let oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, &db, &q.vars(&["x", "y"]))
        .iter()
        .collect();
    assert_eq!(plan.access_range(0..plan.len()), oracle);
    for (k, t) in oracle.iter().enumerate() {
        assert_eq!(plan.access(k as u64).as_ref(), Some(t));
        assert_eq!(plan.inverted_access(t), Some(k as u64));
    }
    assert_eq!(plan.access(plan.len()), None);
    // Empty shards must also be hopped mid-batch.
    assert_eq!(
        plan.access_batch(&[1, 0, 1, 99]),
        vec![oracle[1].clone(), oracle[0].clone(), oracle[1].clone(),]
    );
}

/// Every row shares one leading value: a single code range holds the
/// whole relation, every other shard is empty, and the answers are
/// untouched by it.
#[test]
fn single_code_range_holding_all_rows() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let db = Database::new().with_i64_rows("R", 2, (0..12i64).map(|i| vec![5, i]));
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(3));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    let routing = plan.explain().routing().unwrap();
    assert_eq!(routing.shards(), 3);
    assert_eq!(
        (0..3).map(|s| routing.shard_rows(s)).max(),
        Some(12),
        "one shard owns every row"
    );
    let oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, &db, &q.vars(&["x", "y"]))
        .iter()
        .collect();
    assert_eq!(plan.stream().collect::<Vec<Tuple>>(), oracle);
    assert_eq!(plan.access_range(3..9), oracle[3..9]);
}

/// Ranks sitting exactly on a shard boundary: the first rank of a
/// shard, the last rank of its predecessor, empty windows pinned at the
/// cut, and a lower-bound probe landing precisely there.
#[test]
fn ranks_exactly_on_shard_boundaries() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..20i64).map(|i| vec![i % 10, i % 4]))
        .with_i64_rows("S", 2, (0..20i64).map(|i| vec![i % 4, i % 6]));
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(3));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    let oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, &db, &q.vars(&["x", "y", "z"]))
        .iter()
        .collect();
    let routing = plan.explain().routing().unwrap().clone();
    let len = plan.len();
    let interior: Vec<u64> = routing.offsets()[1..routing.shards()]
        .iter()
        .copied()
        .filter(|&b| b > 0 && b < len)
        .collect();
    assert!(
        !interior.is_empty(),
        "the join must actually straddle a cut"
    );
    let RankedAnswers::ShardedLex(da) = plan.answers() else {
        panic!("expected the sharded lex backend");
    };
    for &b in &interior {
        assert_eq!(plan.access(b).as_ref(), Some(&oracle[b as usize]));
        assert_eq!(plan.access(b - 1).as_ref(), Some(&oracle[(b - 1) as usize]));
        assert_eq!(plan.access_range(b..b), Vec::<Tuple>::new());
        assert_eq!(
            plan.access_range(b - 1..b + 1),
            oracle[(b - 1) as usize..(b + 1) as usize]
        );
        // The first answer of the next shard is its own lower bound.
        assert_eq!(da.rank_of_lower_bound(&oracle[b as usize]), Some(b));
        // The cut really separates two shards: the ranks on each side
        // of it route differently.
        assert!(routing.shard_of(b).unwrap() > routing.shard_of(b - 1).unwrap());
    }
}

/// `top_k(0)`, zero-length pages, and empty batches on a sharded plan:
/// all legal, all empty, no shard is ever consulted.
#[test]
fn zero_sized_requests_on_sharded_plans() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let db = Database::new().with_i64_rows("R", 2, (0..9i64).map(|i| vec![i, i % 3]));
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(3));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.top_k(0), Vec::<Tuple>::new());
    assert_eq!(plan.page(4, 0), Vec::<Tuple>::new());
    assert_eq!(plan.access_range(9..9), Vec::<Tuple>::new());
    assert_eq!(plan.access_batch(&[]), Vec::<Tuple>::new());
    let mut buf = WindowBuf::new();
    assert_eq!(plan.window_into(2..2, &mut buf), 0);
    assert_eq!(plan.access_batch_into(&[], &mut buf), 0);
}

/// One window straddling three or more populated shards comes back as
/// a single seamless page, equal to the per-rank oracle.
#[test]
fn pages_spanning_three_or_more_shards() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..40i64).map(|i| vec![i % 20, i % 5]))
        .with_i64_rows("S", 2, (0..25i64).map(|i| vec![i % 5, i % 7]));
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(7));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    let routing = plan.explain().routing().unwrap();
    let populated = (0..routing.shards())
        .filter(|&s| routing.shard_rows(s) > 0)
        .count();
    assert!(populated >= 4, "need ≥4 populated shards, got {populated}");
    let oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, &db, &q.vars(&["x", "y", "z"]))
        .iter()
        .collect();
    // From inside the first populated shard to inside the last: the
    // window crosses every interior shard in one call.
    let lo = 1u64;
    let hi = plan.len() - 1;
    assert_eq!(plan.access_range(lo..hi), oracle[lo as usize..hi as usize]);
    let mut buf = WindowBuf::new();
    assert_eq!(plan.window_into(lo..hi, &mut buf), hi - lo);
    assert_eq!(buf.to_tuples(), oracle[lo as usize..hi as usize]);
    // The same span as a batch, reversed, crossing shards backwards.
    let ranks: Vec<u64> = (lo..hi).rev().collect();
    let expect: Vec<Tuple> = ranks.iter().map(|&k| oracle[k as usize].clone()).collect();
    assert_eq!(plan.access_batch(&ranks), expect);
}
