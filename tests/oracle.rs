//! Cross-crate correctness: every access structure is checked against
//! the materialize-and-sort oracle on randomized instances, across a
//! catalog of queries covering the tractability landscape.

use proptest::prelude::*;
use ranked_access::prelude::*;
use ranked_access::rda_core::HashLexDirectAccess;

/// Queries with at least one tractable LEX order, with that order.
fn lex_catalog() -> Vec<(Cq, Vec<VarId>)> {
    let mut out = Vec::new();
    let add = |out: &mut Vec<(Cq, Vec<VarId>)>, src: &str, lex: &[&str]| {
        let q = parse(src).unwrap();
        let l = q.vars(lex);
        out.push((q, l));
    };
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["x", "y", "z"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y", "x", "z"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["z", "y", "x"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y", "z", "x"]);
    // Partial orders.
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["z", "y"]);
    // Cartesian product, interleaved (Example 3.5).
    add(
        &mut out,
        "Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)",
        &["v1", "v2", "v3", "v4"],
    );
    // Q5/Q6 from Section 2.5 (unsupported by all prior structures).
    add(
        &mut out,
        "Q(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)",
        &["v1", "v2", "v3", "v4", "v5"],
    );
    add(
        &mut out,
        "Q(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)",
        &["v1", "v2", "v3", "v4", "v5"],
    );
    // Projections (free-connex).
    add(&mut out, "Q(x, y) :- R(x, y), S(y, z)", &["y", "x"]);
    add(&mut out, "Q(x) :- R(x, y), S(y)", &["x"]);
    // Star join.
    add(
        &mut out,
        "Q(a, b, c) :- R(a, b), S(a, c), T(a)",
        &["a", "b", "c"],
    );
    // Self-join.
    add(&mut out, "Q(x, y, z) :- E(x, y), E(y, z)", &["x", "y", "z"]);
    // Wider atoms.
    add(
        &mut out,
        "Q(a, b, c, d) :- R(a, b, c), S(c, d)",
        &["c", "a", "b", "d"],
    );
    out
}

/// Fill every relation a query mentions with random rows over a small
/// domain (forcing join hits).
fn random_db(q: &Cq, rows: usize, domain: i64, seed: u64) -> Database {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::HashSet::new();
    for atom in q.atoms() {
        if !seen.insert(atom.relation.clone()) {
            continue; // self-join: one relation per symbol
        }
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// The oracle order matching `LexDirectAccess`'s internal completion:
/// compare answers on the structure's full internal order.
fn oracle_sorted(q: &Cq, db: &Database, order: &[VarId], internal: &[VarId]) -> Vec<Tuple> {
    let _ = order;
    let mut answers = all_answers(q, db);
    let positions: Vec<usize> = internal
        .iter()
        .filter_map(|v| q.free().iter().position(|f| f == v))
        .collect();
    answers.sort_by(|a, b| {
        positions
            .iter()
            .map(|&p| a[p].cmp(&b[p]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    answers
}

/// Engine-prepared native lex plans come back as `Lex` normally and as
/// `ShardedLex` when `RDA_FORCE_SHARDS` shards the engine; both expose
/// the same inherent API, so run one block against either.
macro_rules! native_lex {
    ($plan:expr, $da:ident => $body:block) => {
        match $plan.answers() {
            RankedAnswers::Lex($da) => $body,
            RankedAnswers::ShardedLex($da) => $body,
            _ => panic!("expected the native lex backend, got {}", $plan.backend()),
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lex_direct_access_matches_oracle(seed in 0u64..1_000_000, rows in 1usize..25, domain in 1i64..6) {
        for (q, lex) in lex_catalog() {
            let db = random_db(&q, rows, domain, seed);
            // Route through the engine: every catalog order is on the
            // tractable side, so it must pick the native structure.
            let plan = Engine::new(db.clone().freeze())
                .prepare(&q, OrderSpec::Lex(lex.clone()), &FdSet::empty(), Policy::Reject)
                .unwrap();
            native_lex!(plan, da => {
                let oracle = oracle_sorted(&q, &db, &lex, da.internal_order());
                prop_assert_eq!(da.len(), oracle.len() as u64, "count mismatch on {}", q);
                // Full equality on the internal order (a strict refinement
                // of the requested order).
                let got: Vec<Tuple> = da.iter().collect();
                prop_assert_eq!(&got, &oracle, "order mismatch on {}", q);
                // Inverted access round-trips; out-of-bound is rejected.
                for (k, t) in got.iter().enumerate() {
                    prop_assert_eq!(da.inverted_access(t), Some(k as u64));
                }
                prop_assert_eq!(da.access(da.len()), None);
            });
        }
    }

    /// The dictionary/arena structure against the pre-arena reference
    /// (`HashMap<Tuple, Bucket>` layout), answer for answer: `access`,
    /// `inverted_access`, and `rank_of_lower_bound` must agree on every
    /// rank, every answer, and random non-answer probes (including
    /// values outside the active domain, which only the arena has to
    /// bracket through its dictionary).
    #[test]
    fn lex_arena_matches_hash_reference(seed in 0u64..1_000_000, rows in 1usize..25, domain in 1i64..6) {
        for (q, lex) in lex_catalog() {
            let db = random_db(&q, rows, domain, seed);
            let arena = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
            let reference = HashLexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
            prop_assert_eq!(arena.len(), reference.len(), "count on {}", q);
            let mut buf: Vec<Value> = Vec::new();
            for k in 0..arena.len() {
                let t = reference.access(k).unwrap();
                let got = arena.access(k);
                prop_assert_eq!(got.as_ref(), Some(&t), "access({}) on {}", k, q);
                prop_assert!(arena.access_into(k, &mut buf));
                prop_assert_eq!(&Tuple::new(buf.clone()), &t, "access_into({}) on {}", k, q);
                prop_assert_eq!(
                    arena.inverted_access(&t),
                    reference.inverted_access(&t),
                    "inverted on {}", q
                );
            }
            // Random probes, answers or not: identical ranks and
            // identical lower bounds.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xa5a5);
            for _ in 0..16 {
                let probe: Tuple = (0..q.free().len())
                    .map(|_| Value::int(rng.random_range(-1..domain + 1)))
                    .collect();
                prop_assert_eq!(
                    arena.inverted_access(&probe),
                    reference.inverted_access(&probe),
                    "inverted probe {} on {}", &probe, q
                );
                prop_assert_eq!(
                    arena.rank_of_lower_bound(&probe),
                    reference.rank_of_lower_bound(&probe),
                    "lower bound {} on {}", &probe, q
                );
            }
        }
    }

    /// Arena vs reference under functional dependencies: the arena's
    /// code-keyed derivation chain (inverted access for FD-promoted
    /// variables) against the reference's value-keyed one — on answers,
    /// non-answers, and probes whose determinant lies outside the
    /// active domain.
    #[test]
    fn lex_arena_matches_hash_reference_under_fds(seed in 0u64..1_000_000, rows in 1usize..40, domain in 2i64..12) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cases: Vec<(Cq, Vec<VarId>, FdSet, Database)> = Vec::new();
        {
            // Example 1.1: LEX <x,z,y> is trio-blocked until R: x → y
            // promotes y. R satisfies the FD by construction.
            let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
            let fds = FdSet::parse(&q, &[("R", "x", "y")]);
            let r: Vec<Tuple> = (0..rows as i64)
                .map(|x| [Value::int(x), Value::int((x * 31 + 7) % domain)].into_iter().collect())
                .collect();
            let s: Vec<Tuple> = (0..rows)
                .map(|_| {
                    [Value::int(rng.random_range(0..domain)), Value::int(rng.random_range(0..domain))]
                        .into_iter()
                        .collect()
                })
                .collect();
            let db = Database::new()
                .with(Relation::from_tuples("R", 2, r))
                .with(Relation::from_tuples("S", 2, s));
            let lex = q.vars(&["x", "z", "y"]);
            cases.push((q, lex, fds, db));
        }
        {
            // Example 8.3: Q(x, z) is not free-connex until S: y → z.
            let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
            let fds = FdSet::parse(&q, &[("S", "y", "z")]);
            let s: Vec<Tuple> = (0..domain)
                .map(|y| [Value::int(y), Value::int((y * 13 + 3) % domain)].into_iter().collect())
                .collect();
            let r: Vec<Tuple> = (0..rows)
                .map(|_| {
                    [Value::int(rng.random_range(0..domain)), Value::int(rng.random_range(0..domain))]
                        .into_iter()
                        .collect()
                })
                .collect();
            let db = Database::new()
                .with(Relation::from_tuples("R", 2, r))
                .with(Relation::from_tuples("S", 2, s));
            let lex = q.vars(&["x", "z"]);
            cases.push((q, lex, fds, db));
        }
        for (q, lex, fds, db) in cases {
            let arena = LexDirectAccess::build(&q, &db, &lex, &fds).unwrap();
            let reference = HashLexDirectAccess::build(&q, &db, &lex, &fds).unwrap();
            prop_assert_eq!(arena.len(), reference.len(), "count on {}", q);
            for k in 0..arena.len() {
                let t = reference.access(k).unwrap();
                let got = arena.access(k);
                prop_assert_eq!(got.as_ref(), Some(&t), "access({}) on {}", k, q);
                prop_assert_eq!(arena.inverted_access(&t), reference.inverted_access(&t));
            }
            for _ in 0..24 {
                // Probes straddling the active domain, so determinants
                // both inside and outside the FD lookup are exercised.
                let probe: Tuple = (0..q.free().len())
                    .map(|_| Value::int(rng.random_range(-2..domain + 2)))
                    .collect();
                prop_assert_eq!(
                    arena.inverted_access(&probe),
                    reference.inverted_access(&probe),
                    "inverted probe {} on {}", &probe, q
                );
                prop_assert_eq!(
                    arena.rank_of_lower_bound(&probe),
                    reference.rank_of_lower_bound(&probe),
                    "lower bound {} on {}", &probe, q
                );
            }
        }
    }

    #[test]
    fn lex_selection_matches_direct_access(seed in 0u64..1_000_000, rows in 1usize..20, domain in 1i64..5) {
        for (q, lex) in lex_catalog() {
            let db = random_db(&q, rows, domain, seed);
            let snap = db.freeze();
            let da = LexDirectAccess::build_on(&q, &snap, &lex, &FdSet::empty()).unwrap();
            let handle = SelectionLexHandle::new(&q, &snap, lex.clone(), &FdSet::empty()).unwrap();
            for k in 0..da.len().min(8) {
                prop_assert_eq!(handle.select_once(k), da.access(k), "k={} on {}", k, q);
            }
            prop_assert_eq!(handle.select_once(da.len()), None);
        }
    }

    #[test]
    fn sum_selection_matches_oracle_weights(seed in 0u64..1_000_000, rows in 1usize..25, domain in 1i64..6) {
        let queries = [
            "Q(x, y, z) :- R(x, y), S(y, z)",
            "Q(a, b) :- R(a), S(b)",
            "Q(x, y) :- R(x, y), S(y, z)",
            "Q(x, y, z) :- R(x, y), S(y, z), T(z, u)",
            "Q(x, y) :- R(x, u, y)",
        ];
        for src in queries {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
                v.as_int().map_or(0.0, |i| i as f64)
            });
            let handle =
                SelectionSumHandle::new(&q, &db.clone().freeze(), Weights::identity(), &FdSet::empty())
                    .unwrap();
            for k in 0..oracle.len().min(10) {
                let got = handle.select_once(k).expect("within bounds");
                prop_assert_eq!(got.0, TotalF64(oracle.weight_at(k).unwrap()), "k={} on {}", k, src);
                // The witness is a genuine answer.
                prop_assert!(all_answers(&q, &db).contains(&got.1), "witness on {}", src);
            }
            prop_assert!(handle.select_once(oracle.len()).is_none());
        }
    }

    /// The columnar SUM store against the materialize-and-sort oracle,
    /// answer for answer (both order by (weight, tuple), so the arrays
    /// must be identical), plus inverted-access round trips and
    /// non-answer rejection through the dictionary.
    #[test]
    fn sum_direct_access_matches_oracle(seed in 0u64..1_000_000, rows in 1usize..30, domain in 1i64..6) {
        let queries = [
            "Q(x, y) :- R(x, y)",
            "Q(x, y) :- R(x, y), S(y, z)",
            "Q(x) :- R(x, y), S(y)",
        ];
        for src in queries {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
            let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
                v.as_int().map_or(0.0, |i| i as f64)
            });
            prop_assert_eq!(da.len(), oracle.len());
            for k in 0..da.len() {
                let (w, t) = da.access_weighted(k).unwrap();
                prop_assert_eq!(w, TotalF64(oracle.weight_at(k).unwrap()), "k={} on {}", k, src);
                let expect = oracle.access(k);
                prop_assert_eq!(Some(&t), expect.as_ref(), "k={} on {}", k, src);
                prop_assert_eq!(da.inverted_access(&t), Some(k), "k={} on {}", k, src);
            }
            // A value outside the answers' active domain is rejected by
            // the dictionary, not misranked.
            let absent: Tuple = (0..q.free().len()).map(|_| Value::int(domain + 7)).collect();
            prop_assert_eq!(da.inverted_access(&absent), None);
        }
    }

    #[test]
    fn ranked_enumeration_agrees_with_sum_order(seed in 0u64..1_000_000, rows in 1usize..20, domain in 1i64..5) {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = random_db(&q, rows, domain, seed);
        let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
            v.as_int().map_or(0.0, |i| i as f64)
        });
        let e = RankedEnumerator::new(&q, &db, |_, v| v.as_int().map_or(0.0, |i| i as f64));
        let got: Vec<f64> = e.take(usize::MAX).into_iter().map(|(w, _)| w).collect();
        let expect: Vec<f64> = (0..oracle.len()).map(|k| oracle.weight_at(k).unwrap()).collect();
        prop_assert_eq!(got, expect);
    }
}

/// Random-order enumeration (Section 1 / Carmeli et al. [15]): a uniform
/// permutation of indices plus direct access enumerates answers in
/// provably uniform random order, without replacement.
#[test]
fn random_permutation_enumeration_is_complete() {
    use rand::seq::SliceRandom;
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = random_db(&q, 40, 7, 42);
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &FdSet::empty()).unwrap();
    let mut indices: Vec<u64> = (0..da.len()).collect();
    indices.shuffle(&mut rand::rng());
    let mut seen: Vec<Tuple> = indices.iter().map(|&k| da.access(k).unwrap()).collect();
    seen.sort();
    let mut expect = all_answers(&q, &db);
    expect.sort();
    assert_eq!(seen, expect);
}
