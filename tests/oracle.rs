//! Cross-crate correctness: every access structure is checked against
//! the materialize-and-sort oracle on randomized instances, across a
//! catalog of queries covering the tractability landscape.

// This file intentionally cross-validates the selection algorithms against the native structures.
#![allow(deprecated)]

use proptest::prelude::*;
use ranked_access::prelude::*;

/// Queries with at least one tractable LEX order, with that order.
fn lex_catalog() -> Vec<(Cq, Vec<VarId>)> {
    let mut out = Vec::new();
    let add = |out: &mut Vec<(Cq, Vec<VarId>)>, src: &str, lex: &[&str]| {
        let q = parse(src).unwrap();
        let l = q.vars(lex);
        out.push((q, l));
    };
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["x", "y", "z"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y", "x", "z"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["z", "y", "x"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y", "z", "x"]);
    // Partial orders.
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["y"]);
    add(&mut out, "Q(x, y, z) :- R(x, y), S(y, z)", &["z", "y"]);
    // Cartesian product, interleaved (Example 3.5).
    add(
        &mut out,
        "Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)",
        &["v1", "v2", "v3", "v4"],
    );
    // Q5/Q6 from Section 2.5 (unsupported by all prior structures).
    add(
        &mut out,
        "Q(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)",
        &["v1", "v2", "v3", "v4", "v5"],
    );
    add(
        &mut out,
        "Q(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)",
        &["v1", "v2", "v3", "v4", "v5"],
    );
    // Projections (free-connex).
    add(&mut out, "Q(x, y) :- R(x, y), S(y, z)", &["y", "x"]);
    add(&mut out, "Q(x) :- R(x, y), S(y)", &["x"]);
    // Star join.
    add(
        &mut out,
        "Q(a, b, c) :- R(a, b), S(a, c), T(a)",
        &["a", "b", "c"],
    );
    // Self-join.
    add(&mut out, "Q(x, y, z) :- E(x, y), E(y, z)", &["x", "y", "z"]);
    // Wider atoms.
    add(
        &mut out,
        "Q(a, b, c, d) :- R(a, b, c), S(c, d)",
        &["c", "a", "b", "d"],
    );
    out
}

/// Fill every relation a query mentions with random rows over a small
/// domain (forcing join hits).
fn random_db(q: &Cq, rows: usize, domain: i64, seed: u64) -> Database {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::HashSet::new();
    for atom in q.atoms() {
        if !seen.insert(atom.relation.clone()) {
            continue; // self-join: one relation per symbol
        }
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// The oracle order matching `LexDirectAccess`'s internal completion:
/// compare answers on the structure's full internal order.
fn oracle_sorted(q: &Cq, db: &Database, order: &[VarId], da: &LexDirectAccess) -> Vec<Tuple> {
    let _ = order;
    let mut answers = all_answers(q, db);
    let positions: Vec<usize> = da
        .internal_order()
        .iter()
        .filter_map(|v| q.free().iter().position(|f| f == v))
        .collect();
    answers.sort_by(|a, b| {
        positions
            .iter()
            .map(|&p| a[p].cmp(&b[p]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lex_direct_access_matches_oracle(seed in 0u64..1_000_000, rows in 1usize..25, domain in 1i64..6) {
        for (q, lex) in lex_catalog() {
            let db = random_db(&q, rows, domain, seed);
            // Route through the engine: every catalog order is on the
            // tractable side, so it must pick the native structure.
            let plan = Engine::prepare(
                &q,
                &db,
                OrderSpec::Lex(lex.clone()),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
            let RankedAnswers::Lex(ref da) = *plan.answers() else {
                panic!("expected the native lex backend, got {}", plan.backend());
            };
            let oracle = oracle_sorted(&q, &db, &lex, da);
            prop_assert_eq!(da.len(), oracle.len() as u64, "count mismatch on {}", q);
            // Full equality on the internal order (a strict refinement of
            // the requested order).
            let got: Vec<Tuple> = da.iter().collect();
            prop_assert_eq!(&got, &oracle, "order mismatch on {}", q);
            // Inverted access round-trips; out-of-bound is rejected.
            for (k, t) in got.iter().enumerate() {
                prop_assert_eq!(da.inverted_access(t), Some(k as u64));
            }
            prop_assert_eq!(da.access(da.len()), None);
        }
    }

    #[test]
    fn lex_selection_matches_direct_access(seed in 0u64..1_000_000, rows in 1usize..20, domain in 1i64..5) {
        for (q, lex) in lex_catalog() {
            let db = random_db(&q, rows, domain, seed);
            let da = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
            for k in 0..da.len().min(8) {
                let sel = selection_lex(&q, &db, &lex, k, &FdSet::empty()).unwrap();
                prop_assert_eq!(sel, da.access(k), "k={} on {}", k, q);
            }
            prop_assert_eq!(selection_lex(&q, &db, &lex, da.len(), &FdSet::empty()).unwrap(), None);
        }
    }

    #[test]
    fn sum_selection_matches_oracle_weights(seed in 0u64..1_000_000, rows in 1usize..25, domain in 1i64..6) {
        let queries = [
            "Q(x, y, z) :- R(x, y), S(y, z)",
            "Q(a, b) :- R(a), S(b)",
            "Q(x, y) :- R(x, y), S(y, z)",
            "Q(x, y, z) :- R(x, y), S(y, z), T(z, u)",
            "Q(x, y) :- R(x, u, y)",
        ];
        for src in queries {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
                v.as_int().map_or(0.0, |i| i as f64)
            });
            for k in 0..oracle.len().min(10) {
                let got = selection_sum(&q, &db, &Weights::identity(), k, &FdSet::empty())
                    .unwrap()
                    .expect("within bounds");
                prop_assert_eq!(got.0, TotalF64(oracle.weight_at(k).unwrap()), "k={} on {}", k, src);
                // The witness is a genuine answer.
                prop_assert!(all_answers(&q, &db).contains(&got.1), "witness on {}", src);
            }
            let oob = selection_sum(&q, &db, &Weights::identity(), oracle.len(), &FdSet::empty()).unwrap();
            prop_assert!(oob.is_none());
        }
    }

    #[test]
    fn sum_direct_access_matches_oracle(seed in 0u64..1_000_000, rows in 1usize..30, domain in 1i64..6) {
        let queries = [
            "Q(x, y) :- R(x, y)",
            "Q(x, y) :- R(x, y), S(y, z)",
            "Q(x) :- R(x, y), S(y)",
        ];
        for src in queries {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let da = SumDirectAccess::build(&q, &db, &Weights::identity(), &FdSet::empty()).unwrap();
            let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
                v.as_int().map_or(0.0, |i| i as f64)
            });
            prop_assert_eq!(da.len(), oracle.len());
            for k in 0..da.len() {
                prop_assert_eq!(
                    da.access_weighted(k).unwrap().0,
                    TotalF64(oracle.weight_at(k).unwrap()),
                    "k={} on {}", k, src
                );
            }
        }
    }

    #[test]
    fn ranked_enumeration_agrees_with_sum_order(seed in 0u64..1_000_000, rows in 1usize..20, domain in 1i64..5) {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = random_db(&q, rows, domain, seed);
        let oracle = MaterializedAccess::by_sum(&q, &db, |_, v| {
            v.as_int().map_or(0.0, |i| i as f64)
        });
        let e = RankedEnumerator::new(&q, &db, |_, v| v.as_int().map_or(0.0, |i| i as f64));
        let got: Vec<f64> = e.take(usize::MAX).into_iter().map(|(w, _)| w).collect();
        let expect: Vec<f64> = (0..oracle.len()).map(|k| oracle.weight_at(k).unwrap()).collect();
        prop_assert_eq!(got, expect);
    }
}

/// Random-order enumeration (Section 1 / Carmeli et al. [15]): a uniform
/// permutation of indices plus direct access enumerates answers in
/// provably uniform random order, without replacement.
#[test]
fn random_permutation_enumeration_is_complete() {
    use rand::seq::SliceRandom;
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = random_db(&q, 40, 7, 42);
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &FdSet::empty()).unwrap();
    let mut indices: Vec<u64> = (0..da.len()).collect();
    indices.shuffle(&mut rand::rng());
    let mut seen: Vec<Tuple> = indices.iter().map(|&k| da.access(k).unwrap()).collect();
    seen.sort();
    let mut expect = all_answers(&q, &db);
    expect.sort();
    assert_eq!(seen, expect);
}
