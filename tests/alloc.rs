//! The zero-allocation guarantee of the access hot paths, enforced by a
//! counting global allocator.
//!
//! After build, the dictionary/arena structures answer
//! `access_into` / `inverted_access` / `rank_of_lower_bound` with **zero**
//! heap allocations, and the owned-tuple `access()` convenience wrapper
//! allocates exactly once — the returned tuple itself ("decode to
//! `Tuple` only in emit").
//!
//! Everything lives in one `#[test]` so no concurrent test can disturb
//! the global counter (this integration-test binary contains nothing
//! else).

use ranked_access::prelude::*;
use ranked_access::rda_db::tup;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn access_hot_paths_do_not_allocate() {
    // A join with both integer and string values: decoding strings
    // clones `Arc<str>`s, which must not allocate either.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let mut r = Relation::new("R", 2);
    let mut s = Relation::new("S", 2);
    for i in 0..300i64 {
        r.insert(
            [Value::int(i), Value::str(format!("j{}", i % 17))]
                .into_iter()
                .collect(),
        );
        s.insert(
            [Value::str(format!("j{}", i % 17)), Value::int(i * 3)]
                .into_iter()
                .collect(),
        );
    }
    let db = Database::new().with(r).with(s);
    let lex = q.vars(&["x", "y", "z"]);
    let da = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
    assert!(da.len() > 1000, "workload big enough to matter");

    // Warm up: grow the output buffer and the per-thread scratch once.
    let mut out: Vec<Value> = Vec::with_capacity(8);
    let some_answer = da.access(da.len() / 2).unwrap();
    let not_an_answer = tup![-1, "nope", 0];
    da.access_into(0, &mut out);
    da.inverted_access(&some_answer);
    da.rank_of_lower_bound(&not_an_answer);

    let ks: Vec<u64> = (0..200u64).map(|i| (i * 7919) % da.len()).collect();

    // access_into: the full access path — descent plus decode into the
    // caller's buffer — performs zero heap allocations.
    let n = allocations_during(|| {
        for &k in &ks {
            assert!(da.access_into(k, &mut out));
            std::hint::black_box(&out);
        }
    });
    assert_eq!(n, 0, "access_into must not allocate on the hot path");

    // inverted_access / rank_of_lower_bound: zero allocations, answers
    // and non-answers alike.
    let probes: Vec<Tuple> = ks.iter().map(|&k| da.access(k).unwrap()).collect();
    let n = allocations_during(|| {
        for t in &probes {
            std::hint::black_box(da.inverted_access(t));
        }
        std::hint::black_box(da.inverted_access(&not_an_answer));
        std::hint::black_box(da.rank_of_lower_bound(&not_an_answer));
    });
    assert_eq!(n, 0, "inverted access must not allocate");

    // Owned-tuple access(): exactly one allocation — the emitted tuple.
    let n = allocations_during(|| {
        for &k in &ks {
            std::hint::black_box(da.access(k));
        }
    });
    assert_eq!(
        n,
        ks.len() as u64,
        "access() must allocate exactly the returned tuple"
    );

    // The SUM store honors the same contract.
    let qs = parse("Q(a, b) :- R2(a, b), S2(b, c)").unwrap();
    let db2 = Database::new()
        .with_i64_rows(
            "R2",
            2,
            (0..500).map(|i| vec![i, i % 23]).collect::<Vec<_>>(),
        )
        .with_i64_rows(
            "S2",
            2,
            (0..60).map(|i| vec![i % 23, i]).collect::<Vec<_>>(),
        );
    let sum = SumDirectAccess::build(&qs, &db2, &Weights::identity(), &FdSet::empty()).unwrap();
    assert!(sum.len() > 100);
    let answers: Vec<Tuple> = (0..sum.len()).map(|k| sum.access(k).unwrap()).collect();
    let sum_non_answer = tup![9999, 9999];
    sum.access_into(0, &mut out); // warm the buffer for arity 2
    sum.inverted_access(&answers[0]);

    let n = allocations_during(|| {
        for k in 0..sum.len() {
            assert!(sum.access_into(k, &mut out));
            std::hint::black_box(&out);
        }
        for t in &answers {
            std::hint::black_box(sum.inverted_access(t));
        }
        std::hint::black_box(sum.inverted_access(&sum_non_answer));
    });
    assert_eq!(n, 0, "SUM access_into / inverted_access must not allocate");

    let n = allocations_during(|| {
        for k in 0..sum.len() {
            std::hint::black_box(sum.access(k));
        }
    });
    assert_eq!(
        n,
        sum.len(),
        "SUM access() must allocate exactly the returned tuple"
    );

    // Windowed access: after one warm-up fill has grown the buffer,
    // refilling a same-sized window — the steady state of a paginating
    // server — performs zero heap allocations on both native arenas.
    let mut wbuf = WindowBuf::new();
    da.access_range_into(0..500, &mut wbuf); // warm: grow to 500 rows
    let n = allocations_during(|| {
        for lo in [0u64, 137, 1000] {
            assert_eq!(da.access_range_into(lo..lo + 500, &mut wbuf), 500);
            std::hint::black_box(&wbuf);
        }
    });
    assert_eq!(n, 0, "LEX windowed refills must not allocate");

    sum.access_range_into(0..100, &mut wbuf); // warm for arity 2
    let n = allocations_during(|| {
        for lo in [0u64, 17, 50] {
            assert_eq!(sum.access_range_into(lo..lo + 100, &mut wbuf), 100);
            std::hint::black_box(&wbuf);
        }
    });
    assert_eq!(n, 0, "SUM windowed refills must not allocate");

    // Batched access: after a same-sized warm-up batch has grown the
    // output buffer and the per-thread scratch (rank pairs, scatter
    // map, per-layer descent traces), refilling from a fresh rank set
    // — the steady state of a point-lookup server — performs zero heap
    // allocations on both native arenas.
    let batch: Vec<u64> = (0..300u64).map(|i| (i * 2654435761) % da.len()).collect();
    da.access_batch_into(&batch, &mut wbuf); // warm buffer + scratch
    let shifted: Vec<u64> = batch.iter().map(|&k| (k + 13) % da.len()).collect();
    let n = allocations_during(|| {
        assert_eq!(da.access_batch_into(&shifted, &mut wbuf), 300);
        assert_eq!(da.access_batch_into(&batch, &mut wbuf), 300);
        std::hint::black_box(&wbuf);
    });
    assert_eq!(n, 0, "LEX batched refills must not allocate");

    let sum_batch: Vec<u64> = (0..100u64).map(|i| (i * 7919) % sum.len()).collect();
    sum.access_batch_into(&sum_batch, &mut wbuf); // warm for arity 2
    let n = allocations_during(|| {
        assert_eq!(sum.access_batch_into(&sum_batch, &mut wbuf), 100);
        std::hint::black_box(&wbuf);
    });
    assert_eq!(n, 0, "SUM batched refills must not allocate");
}
