//! Differential tests for the batched access kernel: on every backend,
//! `access_batch(ranks)` must equal the sequence of per-rank
//! `access(k)` results in request order — for unsorted, duplicate, and
//! out-of-range rank sets — and the `*_into` variant must agree with
//! its owned twin while reusing the caller's buffer. The lex arena's
//! k-cursor descent and the searcher/builder arena layouts are checked
//! against the same oracle: batching and layout are performance knobs,
//! never semantic ones.

use proptest::prelude::*;
use ranked_access::prelude::*;

/// A 2-path instance with a few hundred answers.
fn two_path_db() -> Database {
    Database::new()
        .with_i64_rows("R", 2, (0..60).map(|i| vec![i, i % 7]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..60).map(|j| vec![j % 7, j]).collect::<Vec<_>>())
}

/// A 3-path instance (fmh = 3: any-k fallback territory).
fn three_path_db() -> Database {
    Database::new()
        .with_i64_rows("R", 2, (0..40).map(|i| vec![i, i % 4]).collect::<Vec<_>>())
        .with_i64_rows(
            "S",
            2,
            (0..20).map(|j| vec![j % 4, j % 5]).collect::<Vec<_>>(),
        )
        .with_i64_rows("T", 2, (0..40).map(|k| vec![k % 5, k]).collect::<Vec<_>>())
}

/// The batch contract, spelled out.
fn oracle(plan: &AccessPlan, ranks: &[u64]) -> Vec<Tuple> {
    ranks.iter().filter_map(|&k| plan.access(k)).collect()
}

/// Check every batch shape — empty, singleton, ascending, reversed,
/// scattered with out-of-range mixes, all-duplicates — against the
/// per-rank oracle, through both the owned and the `*_into` surface.
fn assert_batches(label: &str, plan: &AccessPlan) {
    let len = plan.len();
    let mut cases: Vec<Vec<u64>> = vec![
        vec![],
        vec![0],
        vec![len.saturating_sub(1)],
        (0..len).collect(),
        (0..len).rev().collect(),
        vec![len, len + 1, u64::MAX],
        vec![3.min(len); 5],
    ];
    // Scattered, with duplicates and a few past-the-end ranks.
    cases.push(
        (0..120u64)
            .map(|i| i.wrapping_mul(7919) % (len + 7))
            .collect(),
    );
    let mut buf = WindowBuf::new();
    for ranks in &cases {
        let expect = oracle(plan, ranks);
        assert_eq!(
            plan.access_batch(ranks),
            expect,
            "{label}: access_batch, {} ranks",
            ranks.len()
        );
        let n = plan.access_batch_into(ranks, &mut buf);
        assert_eq!(
            n as usize,
            expect.len(),
            "{label}: served count, {} ranks",
            ranks.len()
        );
        assert_eq!(
            buf.to_tuples(),
            expect,
            "{label}: access_batch_into rows, {} ranks",
            ranks.len()
        );
    }
    // Buffer reuse across batches must not leak rows between fills
    // (the loop above already reused `buf`; end on a tiny fill).
    if len > 0 {
        plan.access_batch_into(&[0], &mut buf);
        assert_eq!(buf.len(), 1, "{label}: stale rows leaked through reuse");
    }
}

fn prepare_lex(db: Database, q: &Cq, order: &[&str]) -> std::sync::Arc<AccessPlan> {
    Engine::new(db.freeze())
        .prepare(q, OrderSpec::lex(q, order), &FdSet::empty(), Policy::Reject)
        .unwrap()
}

#[test]
fn batches_on_native_lex_direct_access() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let plan = prepare_lex(two_path_db(), &q, &["x", "y", "z"]);
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert!(plan.len() > 300, "workload big enough to carry-walk");
    assert_batches("lex-da", &plan);
}

#[test]
fn batches_on_branching_shapes() {
    // Cartesian product: every layer carries independently.
    let q = parse("Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..25).map(|i| vec![i % 9, i]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..25).map(|j| vec![j % 8, j]).collect::<Vec<_>>());
    let plan = prepare_lex(db, &q, &["v1", "v2", "v3", "v4"]);
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert_eq!(plan.len(), 625);
    assert_batches("lex-da product", &plan);

    // A star whose layered tree genuinely branches: resuming a descent
    // mid-tree must re-derive sibling buckets, not just a chain suffix.
    let qs = parse("Q(a, b, c) :- R(a, b), T(a, c)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..40).map(|i| vec![i % 6, i]).collect::<Vec<_>>())
        .with_i64_rows("T", 2, (0..40).map(|j| vec![j % 6, j]).collect::<Vec<_>>());
    let plan = prepare_lex(db, &qs, &["a", "b", "c"]);
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert_batches("lex-da star", &plan);
}

#[test]
fn batches_on_native_sum_direct_access() {
    let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let plan = Engine::new(two_path_db().freeze())
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SumDirectAccess);
    assert_batches("sum-da", &plan);
}

#[test]
fn batches_on_selection_backends() {
    // Small instances: selection pays O(n) per access.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..12).map(|i| vec![i, i % 3]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..12).map(|j| vec![j % 3, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionLex);
    assert_batches("selection-lex", &plan);
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    assert_batches("selection-sum", &plan);
}

#[test]
fn batches_on_materialized_and_ranked_enum_fallbacks() {
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let plan = Engine::new(two_path_db().freeze())
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z"]),
            &FdSet::empty(),
            Policy::Materialize,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::Materialized);
    assert_batches("materialized", &plan);

    let q = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let plan = Engine::new(three_path_db().freeze())
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::RankedEnum);
    assert_batches("ranked-enum", &plan);
}

/// The arena layout is a performance knob, never a semantic one: the
/// searcher layout (Eytzinger value mirrors, prefetched windows) and
/// the plain builder layout serve identical batches.
#[test]
fn arena_layouts_serve_identical_batches() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let snap = two_path_db().freeze();
    let lex = q.vars(&["x", "y", "z"]);
    let searcher = LexDirectAccess::build_on_with_layout(
        &q,
        &snap,
        &lex,
        &FdSet::empty(),
        ArenaLayout::Searcher,
    )
    .unwrap();
    let builder = LexDirectAccess::build_on_with_layout(
        &q,
        &snap,
        &lex,
        &FdSet::empty(),
        ArenaLayout::Builder,
    )
    .unwrap();
    assert_eq!(searcher.len(), builder.len());
    let ranks: Vec<u64> = (0..140u64)
        .map(|i| i.wrapping_mul(2654435761) % (searcher.len() + 9))
        .collect();
    assert_eq!(searcher.access_batch(&ranks), builder.access_batch(&ranks));
    for k in 0..searcher.len() {
        assert_eq!(searcher.access(k), builder.access(k), "k={k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random rank multisets against the per-rank oracle on the two
    /// native arena backends — the kernel's carry walk must survive
    /// arbitrary gaps, duplicates, and out-of-range tails.
    #[test]
    fn random_batches_match_oracle(ranks in proptest::collection::vec(0u64..700, 0..80)) {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let plan = prepare_lex(two_path_db(), &q, &["x", "y", "z"]);
        prop_assert_eq!(plan.backend(), Backend::LexDirectAccess);
        let expect = oracle(&plan, &ranks);
        prop_assert_eq!(plan.access_batch(&ranks), expect.clone());
        let mut buf = WindowBuf::new();
        let n = plan.access_batch_into(&ranks, &mut buf);
        prop_assert_eq!(n as usize, expect.len());
        prop_assert_eq!(buf.to_tuples(), expect);

        let qs = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        let plan = Engine::new(two_path_db().freeze())
            .prepare(&qs, OrderSpec::sum_by_value(), &FdSet::empty(), Policy::Reject)
            .unwrap();
        prop_assert_eq!(plan.backend(), Backend::SumDirectAccess);
        let expect = oracle(&plan, &ranks);
        let n = plan.access_batch_into(&ranks, &mut buf);
        prop_assert_eq!(n as usize, expect.len());
        prop_assert_eq!(buf.to_tuples(), expect);
    }
}
