//! The persistence differential oracle: freeze → save → cold-open must
//! be invisible to every consumer of a snapshot.
//!
//! * **Round-trip identity** — a cold-opened base file reproduces the
//!   in-memory snapshot exactly: uid, generation, ancestry, the full
//!   dictionary, every raw relation, every encoded column, every
//!   per-relation version. And it does so **zero-copy**:
//!   [`relation_encode_count`] must not move across `open_snapshot` or
//!   a whole delta-chain replay — columns are served straight from the
//!   mapped file, never re-encoded.
//! * **Backend differential** — for all six `Backend` variants, an
//!   engine over the cold-opened snapshot serves bit-identical answers
//!   to an engine over the original at every rank, window, batch,
//!   inverted probe, and lower-bound probe.
//! * **Delta chains** — a [`SnapshotStore`] replays base + deltas
//!   (append-only extension, interior rebase, deletion, relation
//!   birth, no-op) to exactly the last in-memory generation, lineage
//!   included.
//! * **Corruption** — every strict prefix of a valid file, targeted
//!   bit-flips, forged checksums, wrong kinds, and broken lineage all
//!   fail with a typed [`PersistError`]; nothing panics.

use ranked_access::prelude::*;
use ranked_access::rda_db::{
    open_delta, open_snapshot, relation_encode_count, save_delta, save_snapshot,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// `relation_encode_count` is process-global, so every test here holds
/// this lock: a concurrent freeze in another test must not move the
/// counter between a test's before/after reads.
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "rda-persist-{}-{}-{}",
            std::process::id(),
            label,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn t1(a: i64) -> Tuple {
    [Value::int(a)].into_iter().collect()
}

fn t2(a: i64, b: i64) -> Tuple {
    [Value::int(a), Value::int(b)].into_iter().collect()
}

/// A 2-path instance over a *gappy* domain (multiples of ten), so later
/// inserts can land either past the top (dictionary extension) or in an
/// interior gap (dictionary rebase).
fn seed_db() -> Database {
    Database::new()
        .with_i64_rows(
            "R",
            2,
            (0..30i64).map(|i| vec![(i * 3) % 13 * 10, (i * 5 + 1) % 11 * 10]),
        )
        .with_i64_rows(
            "S",
            2,
            (0..26i64).map(|i| vec![(i * 5 + 1) % 11 * 10, (i * 7 + 2) % 9 * 10]),
        )
        .with_i64_rows("T", 1, vec![vec![0], vec![40]])
}

/// Full structural equality of two snapshots: identity, dictionary,
/// raw relations, encoded columns, versions.
fn assert_snapshot_eq(a: &Snapshot, b: &Snapshot, ctx: &str) {
    assert_eq!(a.generation(), b.generation(), "{ctx}: generation");
    assert_eq!(a.uid(), b.uid(), "{ctx}: uid");
    assert_eq!(a.ancestry(), b.ancestry(), "{ctx}: ancestry");
    assert_eq!(a.dict().len(), b.dict().len(), "{ctx}: dictionary size");
    for code in 0..a.dict().len() as u32 {
        assert_eq!(
            a.dict().value(code),
            b.dict().value(code),
            "{ctx}: dictionary value at code {code}"
        );
    }
    let names: Vec<&str> = a.database().relations().map(|r| r.name()).collect();
    let names_b: Vec<&str> = b.database().relations().map(|r| r.name()).collect();
    assert_eq!(names, names_b, "{ctx}: relation names");
    assert_eq!(a.relation_count(), b.relation_count(), "{ctx}: count");
    for name in names {
        let (ra, rb) = (a.relation(name).unwrap(), b.relation(name).unwrap());
        assert_eq!(ra.arity(), rb.arity(), "{ctx}: {name} arity");
        assert_eq!(ra.tuples(), rb.tuples(), "{ctx}: {name} raw tuples");
        assert_eq!(
            a.relation_version(name),
            b.relation_version(name),
            "{ctx}: {name} version"
        );
        let (ea, eb) = (a.encoded(name).unwrap(), b.encoded(name).unwrap());
        assert_eq!(ea.len(), eb.len(), "{ctx}: {name} encoded rows");
        assert_eq!(ea.arity(), eb.arity(), "{ctx}: {name} encoded arity");
        for p in 0..ea.arity() {
            assert_eq!(ea.col(p), eb.col(p), "{ctx}: {name} column {p}");
        }
    }
}

/// One scenario per backend, as in `tests/engine.rs`: (query, lex order
/// or empty-for-sum, is_sum, policy, expected backend).
fn backend_catalog() -> Vec<(&'static str, Vec<&'static str>, bool, Policy, Backend)> {
    vec![
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec!["x", "y", "z"],
            false,
            Policy::Reject,
            Backend::LexDirectAccess,
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec!["x", "z", "y"],
            false,
            Policy::Reject,
            Backend::SelectionLex,
        ),
        (
            "Q(x, y) :- R(x, y), S(y, z)",
            vec![],
            true,
            Policy::Reject,
            Backend::SumDirectAccess,
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec![],
            true,
            Policy::Reject,
            Backend::SelectionSum,
        ),
        (
            "Q(x, z) :- R(x, y), S(y, z)",
            vec!["x", "z"],
            false,
            Policy::Materialize,
            Backend::Materialized,
        ),
        (
            "Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
            vec![],
            true,
            Policy::RankedEnum,
            Backend::RankedEnum,
        ),
    ]
}

/// Fill every relation a query mentions with random rows over a small
/// domain (forcing join hits).
fn random_db(q: &Cq, rows: usize, domain: i64, seed: u64) -> Database {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::HashSet::new();
    for atom in q.atoms() {
        if !seen.insert(atom.relation.clone()) {
            continue;
        }
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// The cold plan must match the hot plan on the whole access surface,
/// with the hot plan's enumeration as the oracle.
fn check_plan_pair(hot: &AccessPlan, cold: &AccessPlan, ctx: &str) {
    let oracle: Vec<Tuple> = hot.iter().collect();
    let len = cold.len();
    assert_eq!(len, oracle.len() as u64, "{ctx}: answer count");
    for (k, expect) in oracle.iter().enumerate() {
        let k = k as u64;
        assert_eq!(cold.access(k).as_ref(), Some(expect), "{ctx}: access({k})");
        assert_eq!(
            cold.inverted_access(expect),
            Some(k),
            "{ctx}: inverted_access at rank {k}"
        );
    }
    assert_eq!(cold.access(len), None, "{ctx}: out of bounds");
    let streamed: Vec<Tuple> = cold.stream().collect();
    assert_eq!(streamed, oracle, "{ctx}: full stream");

    for r in [0..len, 0..0, len / 3..(2 * len) / 3, len / 2..len + 7] {
        let expect = &oracle[(r.start.min(len) as usize)..(r.end.min(len) as usize)];
        assert_eq!(cold.access_range(r.clone()), expect, "{ctx}: window {r:?}");
    }

    let batches: Vec<Vec<u64>> = vec![
        vec![],
        (0..len).rev().collect(),
        vec![len, len + 9, u64::MAX],
        (0..64u64)
            .map(|i| i.wrapping_mul(7919) % (len + 3))
            .collect(),
    ];
    let mut buf = WindowBuf::new();
    for ranks in &batches {
        let expect: Vec<Tuple> = ranks
            .iter()
            .filter(|&&k| k < len)
            .map(|&k| oracle[k as usize].clone())
            .collect();
        assert_eq!(cold.access_batch(ranks), expect, "{ctx}: batch {ranks:?}");
        let n = cold.access_batch_into(ranks, &mut buf);
        assert_eq!(n as usize, expect.len(), "{ctx}: batch_into count");
        assert_eq!(buf.to_tuples(), expect, "{ctx}: batch_into rows");
    }

    // Native lex plans additionally expose lower-bound probes.
    if let (RankedAnswers::Lex(h), RankedAnswers::Lex(c)) = (hot.answers(), cold.answers()) {
        for probe in &oracle {
            assert_eq!(
                c.rank_of_lower_bound(probe),
                h.rank_of_lower_bound(probe),
                "{ctx}: lower bound of {probe}"
            );
        }
    }
}

#[test]
fn base_round_trip_is_exact_and_zero_copy() {
    let _g = guard();
    let td = TempDir::new("base");
    let snap = seed_db().freeze();
    let path = td.file("base.rdas");
    let written = save_snapshot(&snap, &path).unwrap();
    assert_eq!(
        written,
        std::fs::metadata(&path).unwrap().len(),
        "save_snapshot reports the bytes it wrote"
    );

    let before = relation_encode_count();
    let cold = open_snapshot(&path).unwrap();
    assert_eq!(
        relation_encode_count(),
        before,
        "cold open must map columns, not re-encode them"
    );
    assert_snapshot_eq(&snap, &cold, "base round trip");

    // The reopened snapshot claims its uid: later freezes in this
    // process must never collide with (or sort below) it.
    let fresh = Database::new()
        .with_i64_rows("Z", 1, vec![vec![1]])
        .freeze();
    assert!(
        fresh.uid() > cold.uid(),
        "fresh uid {} must exceed the reopened uid {}",
        fresh.uid(),
        cold.uid()
    );

    // A reopened snapshot is a working delta parent: an untouched
    // database rolls forward sharing everything.
    let mut db = cold.database().clone();
    let next = cold.freeze_delta(&mut db);
    assert_eq!(next.generation(), cold.generation() + 1);
    assert!(next.descends_from(cold.uid()));
}

#[test]
fn cold_open_serves_identical_answers_on_every_backend() {
    let _g = guard();
    let td = TempDir::new("backends");
    for (i, (src, lex, is_sum, policy, backend)) in backend_catalog().into_iter().enumerate() {
        let q = parse(src).unwrap();
        let db = random_db(&q, 18, 5, 0xC0FFEE + i as u64);
        let snap = db.freeze();
        let path = td.file(&format!("b{i}.rdas"));
        save_snapshot(&snap, &path).unwrap();
        let before = relation_encode_count();
        let cold = open_snapshot(&path).unwrap();
        assert_eq!(relation_encode_count(), before, "{src}: open re-encoded");

        let spec = || {
            if is_sum {
                OrderSpec::sum_by_value()
            } else {
                OrderSpec::lex(&q, &lex)
            }
        };
        let hot = Engine::new(snap)
            .prepare(&q, spec(), &FdSet::empty(), policy)
            .unwrap();
        let cold = Engine::new(cold)
            .prepare(&q, spec(), &FdSet::empty(), policy)
            .unwrap();
        assert_eq!(hot.backend(), backend, "{src}: hot routing");
        assert_eq!(cold.backend(), backend, "{src}: cold routing");
        check_plan_pair(&hot, &cold, src);
    }
}

#[test]
fn delta_chain_replays_to_the_live_snapshot() {
    let _g = guard();
    let td = TempDir::new("chain");
    let mut db = seed_db();
    let base = db.clone().freeze();
    db.clear_mutation_log();
    let store = SnapshotStore::create(td.path(), &base).unwrap();

    // With only the base on disk, the store replays to the base.
    assert_snapshot_eq(&base, &store.load().unwrap(), "base-only store");

    // Generation 1: a value past the top of the domain — the
    // append-only dictionary extension path.
    db.insert_into("R", t2(500, 510));
    let g1 = store.freeze_delta(&base, &mut db).unwrap();
    assert_eq!(g1.generation(), 1);

    // Generation 2: a value in an interior domain gap (55 sorts between
    // 50 and 60) forces a dictionary *rebase*, alongside a deletion.
    db.insert_into("S", t2(55, 60));
    db.delete_from("T", &t1(0));
    let g2 = store.freeze_delta(&g1, &mut db).unwrap();

    // Generation 3: a brand-new relation is born mid-chain.
    db.add(Relation::from_tuples("U", 2, vec![t2(55, 500), t2(1, 2)]));
    let g3 = store.freeze_delta(&g2, &mut db).unwrap();

    // Generation 4: a no-op delta (empty mutation log) shares
    // everything and still persists/replays.
    let g4 = store.freeze_delta(&g3, &mut db).unwrap();
    assert_eq!(g4.generation(), 4);

    let reopened = SnapshotStore::open(td.path()).unwrap();
    let before = relation_encode_count();
    let replayed = reopened.load().unwrap();
    assert_eq!(
        relation_encode_count(),
        before,
        "replaying the chain must not re-encode anything"
    );
    assert_snapshot_eq(&g4, &replayed, "replayed chain");
    for uid in [base.uid(), g1.uid(), g2.uid(), g3.uid()] {
        assert!(replayed.descends_from(uid), "lineage survives the disk");
    }

    // The replayed snapshot serves answers identically to the live one.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let spec = || OrderSpec::lex(&q, &["x", "y", "z"]);
    let hot = Engine::new(g4)
        .prepare(&q, spec(), &FdSet::empty(), Policy::Reject)
        .unwrap();
    let cold = Engine::new(replayed)
        .prepare(&q, spec(), &FdSet::empty(), Policy::Reject)
        .unwrap();
    check_plan_pair(&hot, &cold, "replayed chain plan");
}

#[test]
fn degenerate_snapshots_round_trip() {
    let _g = guard();
    let td = TempDir::new("edge");

    // Zero relations.
    let empty = Database::new().freeze();
    let path = td.file("empty.rdas");
    save_snapshot(&empty, &path).unwrap();
    assert_snapshot_eq(&empty, &open_snapshot(&path).unwrap(), "empty database");

    // An empty relation plus every value shape the wire format speaks:
    // extreme ints, empty and non-ASCII strings, nested pairs.
    let mut db = Database::new();
    db.add(Relation::new("E", 3));
    db.add(Relation::from_tuples(
        "V",
        2,
        vec![
            [Value::int(i64::MIN), Value::str("")].into_iter().collect(),
            [Value::int(i64::MAX), Value::str("déjà vu ☂")]
                .into_iter()
                .collect(),
            [
                Value::pair(
                    Value::str("k"),
                    Value::pair(Value::int(-1), Value::str("v")),
                ),
                Value::int(0),
            ]
            .into_iter()
            .collect(),
        ],
    ));
    let snap = db.freeze();
    let path = td.file("values.rdas");
    save_snapshot(&snap, &path).unwrap();
    assert_snapshot_eq(&snap, &open_snapshot(&path).unwrap(), "exotic values");
}

#[test]
fn corrupted_files_fail_typed_and_never_panic() {
    let _g = guard();
    let td = TempDir::new("corrupt");
    let snap = seed_db().freeze();
    let path = td.file("victim.rdas");
    save_snapshot(&snap, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    open_snapshot(&path).unwrap();

    let reopen = |bytes: &[u8]| {
        let p = td.file("mutant.rdas");
        std::fs::write(&p, bytes).unwrap();
        open_snapshot(&p)
    };

    // Every strict prefix of a valid file must fail with a typed
    // error — a truncated header, a cut section table, a half payload,
    // missing padding: all of it.
    for cut in 0..pristine.len() {
        let err = reopen(&pristine[..cut])
            .expect_err(&format!("prefix of {cut}/{} bytes opened", pristine.len()));
        assert!(!err.to_string().is_empty(), "error at cut {cut} displays");
    }

    // Targeted single-bit flips. Offsets: header magic at 0, version at
    // 8, header checksum at 24; the first section header starts at 32
    // with its checksum at 48; its payload starts at 56.
    let flip = |off: usize, bit: u8| {
        let mut bytes = pristine.clone();
        bytes[off] ^= 1 << bit;
        reopen(&bytes)
    };
    assert!(
        matches!(flip(0, 0).unwrap_err(), PersistError::BadMagic),
        "flipped magic"
    );
    assert!(
        matches!(flip(8, 1).unwrap_err(), PersistError::UnsupportedVersion(3)),
        "flipped version"
    );
    assert!(
        matches!(
            flip(24, 3).unwrap_err(),
            PersistError::ChecksumMismatch { section: "header" }
        ),
        "flipped header checksum"
    );
    assert!(
        matches!(
            flip(56, 5).unwrap_err(),
            PersistError::ChecksumMismatch { .. }
        ),
        "flipped section payload byte"
    );
    assert!(
        flip(pristine.len() - 1, 7).is_err(),
        "flipped final byte of the file"
    );

    // A forged section checksum (inverted in place) must be caught.
    let mut forged = pristine.clone();
    for b in &mut forged[48..56] {
        *b = !*b;
    }
    assert!(
        matches!(
            reopen(&forged).unwrap_err(),
            PersistError::ChecksumMismatch { .. }
        ),
        "forged section checksum"
    );

    // Trailing garbage after the last section is corruption, not slack.
    let mut padded = pristine.clone();
    padded.extend_from_slice(&[0u8; 8]);
    assert!(reopen(&padded).is_err(), "trailing bytes");

    // Kind confusion: a delta file is not a base file and vice versa.
    let mut db = snap.database().clone();
    db.insert_into("R", t2(7, 17));
    let child = snap.freeze_delta(&mut db);
    let delta_path = td.file("delta.rdas");
    save_delta(&snap, &child, &delta_path).unwrap();
    assert!(
        matches!(
            open_snapshot(&delta_path).unwrap_err(),
            PersistError::WrongKind {
                expected: 0,
                found: 1
            }
        ),
        "base open of a delta file"
    );
    assert!(
        matches!(
            open_delta(&snap, &path).unwrap_err(),
            PersistError::WrongKind {
                expected: 1,
                found: 0
            }
        ),
        "delta open of a base file"
    );

    // Lineage: a delta only replays onto the parent it was written
    // against, and only records a true parent→child step.
    let stranger = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 2]])
        .freeze();
    assert!(
        matches!(
            open_delta(&stranger, &delta_path).unwrap_err(),
            PersistError::LineageMismatch { .. }
        ),
        "replay onto the wrong parent"
    );
    assert!(
        matches!(
            save_delta(&stranger, &child, td.file("bogus.rdas")).unwrap_err(),
            PersistError::LineageMismatch { .. }
        ),
        "persisting a non-step as a delta"
    );

    // Store lifecycle errors are typed I/O, not panics.
    let store_dir = TempDir::new("store-errors");
    assert!(
        matches!(
            SnapshotStore::open(store_dir.path()).unwrap_err(),
            PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound
        ),
        "opening a store with no base"
    );
    SnapshotStore::create(store_dir.path(), &snap).unwrap();
    assert!(
        matches!(
            SnapshotStore::create(store_dir.path(), &snap).unwrap_err(),
            PersistError::Io(e) if e.kind() == std::io::ErrorKind::AlreadyExists
        ),
        "creating a store over an existing base"
    );
}
