//! The serving-core concurrency contract: one engine, one snapshot,
//! shared `Arc<AccessPlan>`s hammered from many threads — every thread
//! must observe exactly what a single-threaded oracle observes, on
//! every backend the router can choose.

use ranked_access::prelude::OrderSpec as Spec;
use ranked_access::prelude::*;
use std::sync::Arc;

const THREADS: usize = 8;

fn fig_db(rows: usize) -> Database {
    let r: Vec<Vec<i64>> = (0..rows as i64).map(|i| vec![i % 23, i % 17]).collect();
    let s: Vec<Vec<i64>> = (0..rows as i64)
        .map(|i| vec![i % 17, (i * 7) % 29])
        .collect();
    Database::new()
        .with_i64_rows("R", 2, r)
        .with_i64_rows("S", 2, s)
}

/// Single-threaded oracle first, then N threads replaying interleaved
/// slices of the same operations against the shared plan. Lazy
/// backends pay O(n) per access, so the oracle samples a bounded set
/// of ranks instead of scanning everything.
fn hammer(plan: &Arc<AccessPlan>) {
    let len = plan.len();
    let stride = (len / 24).max(1);
    let sample: Vec<u64> = (0..len).step_by(stride as usize).collect();
    let answers: Vec<Tuple> = sample
        .iter()
        .map(|&k| plan.access(k).expect("k < len"))
        .collect();
    let ranks: Vec<u64> = answers
        .iter()
        .map(|t| plan.inverted_access(t).expect("an answer has a rank"))
        .collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let plan = Arc::clone(plan);
            let (sample, answers, ranks) = (&sample, &answers, &ranks);
            s.spawn(move || {
                let mut buf: Vec<Value> = Vec::new();
                for (i, expect) in answers.iter().enumerate().skip(t % 3) {
                    let k = sample[i];
                    assert_eq!(plan.access(k).as_ref(), Some(expect), "thread {t} k={k}");
                    assert!(plan.access_into(k, &mut buf), "thread {t} k={k}");
                    assert_eq!(&Tuple::new(buf.clone()), expect, "thread {t} k={k}");
                    assert_eq!(
                        plan.inverted_access(expect),
                        Some(ranks[i]),
                        "thread {t} k={k}"
                    );
                }
                assert_eq!(plan.access(len), None, "thread {t} out of bound");
            });
        }
    });
}

#[test]
fn shared_plans_agree_with_single_threaded_oracle_on_every_backend() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(fig_db(72).freeze());
    let cases: Vec<(Arc<AccessPlan>, Backend)> = vec![
        (
            engine
                .prepare(
                    &q,
                    Spec::lex(&q, &["x", "y", "z"]),
                    &FdSet::empty(),
                    Policy::Reject,
                )
                .unwrap(),
            Backend::LexDirectAccess,
        ),
        (
            engine
                .prepare(
                    &q,
                    Spec::lex(&q, &["x", "z", "y"]),
                    &FdSet::empty(),
                    Policy::Reject,
                )
                .unwrap(),
            Backend::SelectionLex,
        ),
        (
            engine
                .prepare(&q, Spec::sum_by_value(), &FdSet::empty(), Policy::Reject)
                .unwrap(),
            Backend::SelectionSum,
        ),
        (
            engine
                .prepare(
                    &qp,
                    Spec::lex(&qp, &["x", "z"]),
                    &FdSet::empty(),
                    Policy::Materialize,
                )
                .unwrap(),
            Backend::Materialized,
        ),
    ];
    for (plan, backend) in &cases {
        assert_eq!(plan.backend(), *backend);
        hammer(plan);
    }

    // SUM direct access has its own covering-atom shape.
    let qc = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let plan = engine
        .prepare(&qc, Spec::sum_by_value(), &FdSet::empty(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.backend(), Backend::SumDirectAccess);
    hammer(&plan);
}

/// The ranked-enumeration fallback serializes its stream behind a
/// mutex; concurrent accesses must still all see the same answers.
#[test]
fn ranked_enum_fallback_is_thread_safe() {
    let q3 = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let db = Database::new()
        .with_i64_rows(
            "R",
            2,
            (0..30).map(|i| vec![i % 7, i % 5]).collect::<Vec<_>>(),
        )
        .with_i64_rows(
            "S",
            2,
            (0..30).map(|i| vec![i % 5, i % 6]).collect::<Vec<_>>(),
        )
        .with_i64_rows(
            "T",
            2,
            (0..30).map(|i| vec![i % 6, i % 4]).collect::<Vec<_>>(),
        );
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q3,
            Spec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::RankedEnum);
    // Let threads race the *first* materialization of the stream.
    let len = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for k in (0..64u64).skip(t % 4) {
                        if let Some(tp) = plan.access(k) {
                            seen.push((k, tp));
                        }
                    }
                    seen
                })
            })
            .collect();
        let all: Vec<Vec<(u64, Tuple)>> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        // Every thread saw a consistent (k → answer) mapping.
        for views in &all {
            for (k, t) in views {
                assert_eq!(plan.access(*k).as_ref(), Some(t));
            }
        }
        plan.len()
    });
    hammer(&plan);
    assert!(len > 0);
}

/// `rank_of_lower_bound` (Remark 3) is only native on the lex arena:
/// hammer it — answers and non-answer probes alike — from N threads
/// against the single-threaded oracle.
#[test]
fn rank_of_lower_bound_is_consistent_across_threads() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(fig_db(90).freeze());
    let plan = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    // `Lex` on a plain engine, `ShardedLex` under `RDA_FORCE_SHARDS`;
    // the hammer below runs identically against either.
    macro_rules! hammer_lower_bound {
        ($da:ident) => {{
            let probes: Vec<Tuple> = (0..$da.len())
                .map(|k| $da.access(k).unwrap())
                .chain((0..40i64).map(|i| {
                    [
                        Value::int(i % 9 - 1),
                        Value::int((i * 3) % 11),
                        Value::int(i % 31),
                    ]
                    .into_iter()
                    .collect()
                }))
                .collect();
            let oracle: Vec<Option<u64>> =
                probes.iter().map(|t| $da.rank_of_lower_bound(t)).collect();
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let (da, probes, oracle) = (&$da, &probes, &oracle);
                    s.spawn(move || {
                        for (i, probe) in probes.iter().enumerate().skip(t % 5) {
                            assert_eq!(
                                da.rank_of_lower_bound(probe),
                                oracle[i],
                                "thread {t} probe {probe}"
                            );
                        }
                    });
                }
            });
        }};
    }
    match plan.answers() {
        RankedAnswers::Lex(da) => hammer_lower_bound!(da),
        RankedAnswers::ShardedLex(da) => hammer_lower_bound!(da),
        _ => panic!("expected the native lex backend"),
    }
}

/// Concurrent `prepare` of the same key from many threads: everyone
/// ends up sharing one plan (pointer-equal), and the cache stays
/// within its bound under a churn of distinct keys.
#[test]
fn concurrent_prepare_converges_to_one_shared_plan() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(fig_db(60).freeze());
    let plans: Vec<Arc<AccessPlan>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = &engine;
                let q = &q;
                s.spawn(move || {
                    engine
                        .prepare(
                            q,
                            Spec::lex(q, &["x", "y", "z"]),
                            &FdSet::empty(),
                            Policy::Reject,
                        )
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    // All racers converge: after the cache settles, the engine serves
    // one canonical Arc — and every plan that "lost" the race is still
    // correct, so late arrivals are pointer-equal to the cached one.
    let canonical = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert!(plans.iter().any(|p| Arc::ptr_eq(p, &canonical)));
    for p in &plans {
        assert_eq!(p.len(), canonical.len());
    }
    assert_eq!(engine.plan_cache_len(), 1);
}

/// The generation-consistency contract of [`Engine::advance`]: readers
/// racing a stream of delta freezes must never observe a tuple from a
/// generation other than the one their plan reports. Every generation
/// rewrites R wholesale with a distinct marker column, so a single
/// tuple from the wrong generation is immediately visible.
#[test]
fn advance_race_never_serves_mixed_generations() {
    use std::sync::atomic::{AtomicBool, Ordering};
    const GENS: i64 = 12;
    const ROWS: i64 = 32;
    let rows = |marker: i64| -> Vec<Tuple> {
        (0..ROWS)
            .map(|i| [Value::int(i), Value::int(marker)].into_iter().collect())
            .collect()
    };
    let q = parse("Q(x, g) :- R(x, g)").unwrap();
    let mut db = Database::new().with(Relation::from_tuples("R", 2, rows(0)));
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (engine, q, done) = (&engine, &q, &done);
            s.spawn(move || {
                let mut iterations = 0u64;
                loop {
                    let plan = engine
                        .prepare(
                            q,
                            Spec::lex(q, &["x", "g"]),
                            &FdSet::empty(),
                            Policy::Reject,
                        )
                        .unwrap();
                    let marker = Value::int(plan.generation() as i64);
                    assert_eq!(plan.len(), ROWS as u64, "thread {t}");
                    for tuple in plan.iter() {
                        assert_eq!(
                            tuple[1], marker,
                            "thread {t}: tuple from generation {} served by a \
                             generation-{} plan",
                            tuple[1], marker
                        );
                    }
                    iterations += 1;
                    // Keep racing until the writer is done, then take
                    // one final lap against the settled snapshot.
                    if done.load(Ordering::Acquire) && iterations >= 2 {
                        break;
                    }
                }
            });
        }
        // The writer: one delta freeze + advance per generation, each
        // rewriting R with its own marker.
        for marker in 1..=GENS {
            db.add(Relation::from_tuples("R", 2, rows(marker)));
            let snap = engine.snapshot().freeze_delta(&mut db);
            assert_eq!(engine.advance(snap), 0, "R is dirty every time");
        }
        done.store(true, Ordering::Release);
    });
    assert_eq!(engine.generation(), GENS as u64);
    let settled = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "g"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(settled.generation(), GENS as u64);
    assert_eq!(
        settled.access(0),
        Some([Value::int(0), Value::int(GENS)].into_iter().collect())
    );
}

/// Eviction and churn across generations: the LRU bound holds while
/// threads hammer a mix of keys and the writer advances generations
/// under them; carried (clean) plans stay pointer-identical, dirty
/// ones rebuild against the new generation.
#[test]
fn generation_rekeyed_cache_bound_holds_under_churn() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qs = parse("P(a, b) :- S(a, b)").unwrap();
    let mut db = fig_db(48);
    let engine = Engine::with_plan_cache_capacity(db.clone().freeze(), 3);
    db.clear_mutation_log();
    let clean_before = engine
        .prepare(
            &qs,
            Spec::lex(&qs, &["a", "b"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    let dirty_before = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    let orders: Vec<Vec<&str>> = vec![
        vec!["x", "y", "z"],
        vec!["y", "x", "z"],
        vec!["z", "y", "x"],
        vec!["y"],
    ];
    for round in 0..4u64 {
        // Dirty R only; S — and the S-only plan — stays clean.
        db.insert_into(
            "R",
            [Value::int(100 + round as i64), Value::int(1)]
                .into_iter()
                .collect(),
        );
        engine.advance_delta(&mut db);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (engine, q, orders) = (&engine, &q, &orders);
                s.spawn(move || {
                    for i in 0..12 {
                        let names = &orders[(t + i) % orders.len()];
                        let plan = engine
                            .prepare(q, Spec::lex(q, names), &FdSet::empty(), Policy::Reject)
                            .unwrap();
                        assert_eq!(plan.generation(), engine.generation());
                        assert!(plan.access(0).is_some());
                    }
                });
            }
        });
        assert!(engine.plan_cache_len() <= 3, "cache bound violated");
    }
    // Dirty plans were invalidated: preparing the original key now
    // yields a fresh structure at the current generation.
    let dirty_after = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert!(!Arc::ptr_eq(&dirty_before, &dirty_after));
    assert_eq!(dirty_after.generation(), 4);
    assert_eq!(
        dirty_before.generation(),
        0,
        "old readers keep generation 0"
    );
    // The clean plan may have been evicted by churn (capacity 3), but
    // if re-prepared it must still serve identical answers.
    let clean_after = engine
        .prepare(
            &qs,
            Spec::lex(&qs, &["a", "b"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(
        (0..clean_after.len())
            .map(|k| clean_after.access(k))
            .collect::<Vec<_>>(),
        (0..clean_before.len())
            .map(|k| clean_before.access(k))
            .collect::<Vec<_>>(),
        "S never changed"
    );
}

/// Cache semantics under churn: the bound holds while many threads
/// prepare distinct keys concurrently.
#[test]
fn bounded_cache_holds_under_concurrent_churn() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::with_plan_cache_capacity(fig_db(40).freeze(), 3);
    let orders: Vec<Vec<&str>> = vec![
        vec!["x", "y", "z"],
        vec!["y", "x", "z"],
        vec!["z", "y", "x"],
        vec!["y", "z", "x"],
        vec!["y"],
        vec!["z", "y"],
    ];
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let q = &q;
            let orders = &orders;
            s.spawn(move || {
                for i in 0..24 {
                    let names = &orders[(t + i) % orders.len()];
                    let plan = engine
                        .prepare(q, Spec::lex(q, names), &FdSet::empty(), Policy::Reject)
                        .unwrap();
                    assert!(plan.access(0).is_some());
                }
            });
        }
    });
    assert!(engine.plan_cache_len() <= 3, "cache bound violated");
}

/// The serving-layer pinning contract: a `RankedStream` borrows its
/// plan, and a plan serves exactly the generation it was prepared
/// over — so a stream opened before `Engine::advance` keeps yielding
/// the *old* generation's answers, in order, to the very end, while
/// new prepares see the new data. A half-consumed stream never mixes
/// generations (this is what makes the `rda_serve` cursor sound: a
/// clean-resumed cursor re-prepares, it never splices sequences).
#[test]
fn ranked_stream_stays_pinned_to_its_generation_across_advance() {
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let rows: Vec<Vec<i64>> = (0..20i64).map(|i| vec![i % 5, i % 3]).collect();
    let mut db = Database::new().with_i64_rows("R", 2, rows);
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();

    let plan = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    let expected = plan.access_range(0..plan.len());
    assert!(
        expected.len() >= 4,
        "need a few answers to split the stream"
    );

    // Consume a prefix, then advance the engine mid-stream.
    let mut stream = plan.stream_batched(0, 2);
    let mut got: Vec<Tuple> = vec![stream.next().unwrap(), stream.next().unwrap()];
    db.insert_into(
        "R",
        [Value::int(-100), Value::int(-100)].into_iter().collect(),
    );
    engine.advance_delta(&mut db);

    // New prepares serve the new generation...
    let fresh = engine
        .prepare(
            &q,
            Spec::lex(&q, &["x", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(fresh.generation(), 1);
    assert_eq!(fresh.len(), plan.len() + 1);
    assert_eq!(
        fresh.access(0).unwrap(),
        [Value::int(-100), Value::int(-100)].into_iter().collect()
    );

    // ...while the in-flight stream finishes the old one, unchanged.
    assert_eq!(stream.position(), 2);
    got.extend(&mut stream);
    assert_eq!(got, expected, "stream mixed generations");
    assert_eq!(plan.generation(), 0);

    // A stream opened on the old plan even now still serves gen 0.
    let replay: Vec<Tuple> = plan.stream_batched(0, 7).collect();
    assert_eq!(replay, expected);
}
