//! Figure 1 and Figure 8 regenerated from the decision procedures, plus
//! the dichotomy relationships the paper states.

use ranked_access::prelude::*;

fn no_fds() -> FdSet {
    FdSet::empty()
}

fn verdicts(q: &Cq, lex: &[&str]) -> [Verdict; 4] {
    let l = q.vars(lex);
    [
        classify(q, &no_fds(), &Problem::DirectAccessLex(l.clone())),
        classify(q, &no_fds(), &Problem::SelectionLex(l)),
        classify(q, &no_fds(), &Problem::DirectAccessSum),
        classify(q, &no_fds(), &Problem::SelectionSum),
    ]
}

/// Figure 1, left ellipse set: direct-access classification regions.
#[test]
fn figure_1_direct_access_regions() {
    // Region "both tractable" (innermost): acyclic, one atom covers free.
    let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let [da_lex, _, da_sum, _] = verdicts(&q, &["x", "y"]);
    assert!(da_lex.is_tractable());
    assert!(da_sum.is_tractable());

    // Region "LEX tractable, SUM intractable": L-connex, no trio, but
    // free variables spread over atoms.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let [da_lex, _, da_sum, _] = verdicts(&q, &["x", "y", "z"]);
    assert!(da_lex.is_tractable());
    assert!(matches!(da_sum, Verdict::Intractable { .. }));

    // Region "both intractable" within free-connex: disruptive trio.
    let [da_lex, _, da_sum, _] = verdicts(&q, &["x", "z", "y"]);
    assert!(matches!(da_lex, Verdict::Intractable { .. }));
    assert!(matches!(da_sum, Verdict::Intractable { .. }));

    // Outside free-connex: everything intractable.
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    for v in verdicts(&q, &["x", "z"]) {
        assert!(matches!(v, Verdict::Intractable { .. }), "{v:?}");
    }

    // Outside acyclic: everything intractable.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
    for v in verdicts(&q, &["x", "y", "z"]) {
        assert!(matches!(v, Verdict::Intractable { .. }), "{v:?}");
    }
}

/// Figure 1, right side: selection classification regions.
#[test]
fn figure_1_selection_regions() {
    // Free-connex ⇒ LEX selection tractable, for any order.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    for lex in [["x", "y", "z"], ["x", "z", "y"], ["z", "x", "y"]] {
        let v = classify(&q, &no_fds(), &Problem::SelectionLex(q.vars(&lex)));
        assert!(v.is_tractable(), "{lex:?}");
    }
    // fmh ≤ 1: SUM selection tractable (inner region).
    let q1 = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    assert!(classify(&q1, &no_fds(), &Problem::SelectionSum).is_tractable());
    // fmh = 2: SUM selection tractable (middle region).
    assert!(classify(&q, &no_fds(), &Problem::SelectionSum).is_tractable());
    // fmh = 3: SUM selection intractable.
    let q3 = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let v = classify(&q3, &no_fds(), &Problem::SelectionSum);
    assert!(matches!(
        v.reason(),
        Some(Reason::TooManyFreeMaximalHyperedges { fmh: 3 })
    ));
}

/// Figure 8's table: SUM direct access by αfree.
#[test]
fn figure_8_sum_direct_access_table() {
    // αfree = 1: possible in <n log n, 1>.
    let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    assert!(matches!(
        classify(&q, &no_fds(), &Problem::DirectAccessSum),
        Verdict::Tractable {
            bound: "<n log n, 1>"
        }
    ));
    // αfree = 2 (3SUM-hard): e.g. the 2-path (x and z independent).
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let v = classify(&q, &no_fds(), &Problem::DirectAccessSum);
    assert!(matches!(
        v.reason(),
        Some(Reason::NoAtomCoversFree { alpha_free: 2 })
    ));
    // αfree = 3 (stronger 3SUM bound): the 3-star.
    let q = parse("Q(x, y, z) :- R(x, c), S(y, c), T(z, c)").unwrap();
    let v = classify(&q, &no_fds(), &Problem::DirectAccessSum);
    assert!(matches!(
        v.reason(),
        Some(Reason::NoAtomCoversFree { alpha_free: 3 })
    ));
    // Cyclic (Hyperclique-hard).
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
    let v = classify(&q, &no_fds(), &Problem::DirectAccessSum);
    assert!(matches!(v.reason(), Some(Reason::Cyclic)));
}

/// Structural implications the paper proves.
#[test]
fn dichotomy_implications() {
    let catalog = [
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "y", "z"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z", "y"]),
        ("Q(x, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
        ("Q(x, y) :- R(x, y), S(y, z)", vec!["x", "y"]),
        ("Q(a, b) :- R(a), S(b)", vec!["a", "b"]),
        (
            "Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
            vec!["x", "y", "z", "u"],
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
            vec!["x", "y", "z"],
        ),
        (
            "Q(p, a, c1, c2, d, n) :- V(p, a, c1), C(c2, d, n)",
            vec!["n", "a", "p", "c1", "c2", "d"],
        ),
    ];
    for (src, lex) in catalog {
        let q = parse(src).unwrap();
        let [da_lex, sel_lex, da_sum, sel_sum] = verdicts(&q, &lex);
        // DA tractable ⇒ selection tractable (same order type).
        if da_lex.is_tractable() {
            assert!(sel_lex.is_tractable(), "{src}");
        }
        if da_sum.is_tractable() {
            assert!(sel_sum.is_tractable(), "{src}");
        }
        // SUM tractable ⇒ LEX tractable (LEX is a special case of SUM).
        if da_sum.is_tractable() {
            assert!(da_lex.is_tractable(), "{src}");
        }
        if sel_sum.is_tractable() {
            assert!(sel_lex.is_tractable(), "{src}");
        }
        // Selection-LEX tractability = free-connexity = DA for *some*
        // order: if selection is tractable there must exist a tractable
        // complete lex order (the empty prefix completes, Lemma 4.4).
        if sel_lex.is_tractable() {
            let v = classify(&q, &no_fds(), &Problem::DirectAccessLex(vec![]));
            assert!(v.is_tractable(), "{src}");
        }
    }
}

/// Every tractable verdict must be constructible, and every intractable
/// verdict must be refused by the builders (the classifier and builders
/// agree).
#[test]
fn classifier_and_builders_agree() {
    let catalog = [
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "y", "z"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z", "y"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["z", "y"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
        ("Q(x, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
        ("Q(x, y) :- R(x, y), S(y, z)", vec!["x", "y"]),
        ("Q(a, b) :- R(a), S(b)", vec!["a", "b"]),
    ];
    let db = |q: &Cq| {
        let mut db = Database::new();
        for atom in q.atoms() {
            let arity = atom.terms.len();
            let rows: Vec<Tuple> = (0..4i64)
                .map(|i| (0..arity).map(|j| Value::int((i + j as i64) % 3)).collect())
                .collect();
            db.add(Relation::from_tuples(&atom.relation, arity, rows));
        }
        db
    };
    for (src, lex) in catalog {
        let q = parse(src).unwrap();
        let l = q.vars(&lex);
        let snap = db(&q).freeze();
        let verdict = classify(&q, &no_fds(), &Problem::DirectAccessLex(l.clone()));
        let built = LexDirectAccess::build_on(&q, &snap, &l, &no_fds());
        assert_eq!(
            verdict.is_tractable(),
            built.is_ok(),
            "DA-LEX {src} {lex:?}"
        );
        let verdict = classify(&q, &no_fds(), &Problem::SelectionLex(l.clone()));
        let sel = SelectionLexHandle::new(&q, &snap, l.clone(), &no_fds());
        assert_eq!(verdict.is_tractable(), sel.is_ok(), "SEL-LEX {src} {lex:?}");
        let verdict = classify(&q, &no_fds(), &Problem::DirectAccessSum);
        let built = SumDirectAccess::build_on(&q, &snap, &Weights::identity(), &no_fds());
        assert_eq!(verdict.is_tractable(), built.is_ok(), "DA-SUM {src}");
        let verdict = classify(&q, &no_fds(), &Problem::SelectionSum);
        let sel = SelectionSumHandle::new(&q, &snap, Weights::identity(), &no_fds());
        assert_eq!(verdict.is_tractable(), sel.is_ok(), "SEL-SUM {src}");
    }
}

/// The engine's routing must agree with the bare classifier on every
/// (query, order) pair: native backend iff direct access is tractable,
/// selection backend iff only selection is, fallback/reject otherwise.
#[test]
fn engine_routing_agrees_with_classifier() {
    let catalog = [
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "y", "z"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z", "y"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["z", "y"]),
        ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
        ("Q(x, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
        ("Q(x, y) :- R(x, y), S(y, z)", vec!["x", "y"]),
        ("Q(a, b) :- R(a), S(b)", vec!["a", "b"]),
        (
            "Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
            vec!["x", "y", "z", "u"],
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
            vec!["x", "y", "z"],
        ),
    ];
    let db = |q: &Cq| {
        let mut db = Database::new();
        for atom in q.atoms() {
            let arity = atom.terms.len();
            let rows: Vec<Tuple> = (0..4i64)
                .map(|i| (0..arity).map(|j| Value::int((i + j as i64) % 3)).collect())
                .collect();
            db.add(Relation::from_tuples(&atom.relation, arity, rows));
        }
        db
    };
    for (src, lex) in catalog {
        let q = parse(src).unwrap();
        let engine = Engine::new(db(&q).freeze());
        let l = q.vars(&lex);

        // LEX routing.
        let da_v = classify(&q, &no_fds(), &Problem::DirectAccessLex(l.clone()));
        let sel_v = classify(&q, &no_fds(), &Problem::SelectionLex(l.clone()));
        let plan = engine
            .prepare(
                &q,
                OrderSpec::Lex(l.clone()),
                &no_fds(),
                Policy::Materialize,
            )
            .unwrap();
        let expected = if da_v.is_tractable() {
            Backend::LexDirectAccess
        } else if sel_v.is_tractable() {
            Backend::SelectionLex
        } else {
            Backend::Materialized
        };
        assert_eq!(plan.backend(), expected, "LEX {src} {lex:?}");
        assert_eq!(plan.explain().verdict(), &da_v, "LEX verdict {src}");
        // And with Policy::Reject, prepare succeeds iff some paper
        // algorithm applies.
        let rejected = engine.prepare(&q, OrderSpec::Lex(l.clone()), &no_fds(), Policy::Reject);
        assert_eq!(
            rejected.is_ok(),
            da_v.is_tractable() || sel_v.is_tractable(),
            "LEX reject {src} {lex:?}"
        );

        // SUM routing.
        let da_v = classify(&q, &no_fds(), &Problem::DirectAccessSum);
        let sel_v = classify(&q, &no_fds(), &Problem::SelectionSum);
        let plan = engine
            .prepare(
                &q,
                OrderSpec::sum_by_value(),
                &no_fds(),
                Policy::Materialize,
            )
            .unwrap();
        let expected = if da_v.is_tractable() {
            Backend::SumDirectAccess
        } else if sel_v.is_tractable() {
            Backend::SelectionSum
        } else {
            Backend::Materialized
        };
        assert_eq!(plan.backend(), expected, "SUM {src}");
    }
}
