//! Section 8 end-to-end: FD-extensions change the tractability frontier
//! and the algorithms exploit them on real instances, for all four
//! problems.

use ranked_access::prelude::*;

fn tup(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::int(v)).collect()
}

/// Example 8.3 with data: Q2P(x,z) :- R(x,y), S(y,z), FD S: y → z.
/// All four problems become tractable; answers match the oracle.
#[test]
fn example_8_3_end_to_end() {
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let fds = FdSet::parse(&q, &[("S", "y", "z")]);
    let db = Database::new()
        .with_i64_rows(
            "R",
            2,
            vec![vec![1, 10], vec![2, 20], vec![3, 10], vec![9, 77]],
        )
        .with_i64_rows("S", 2, vec![vec![10, 5], vec![20, 4]]);
    // Oracle answers: (1,5), (2,4), (3,5); (9,77) dangles.
    let mut oracle = all_answers(&q, &db);
    oracle.sort();
    assert_eq!(oracle, vec![tup(&[1, 5]), tup(&[2, 4]), tup(&[3, 5])]);

    // Without the FD: everything intractable.
    for p in [
        Problem::DirectAccessLex(q.vars(&["x", "z"])),
        Problem::SelectionLex(q.vars(&["x", "z"])),
        Problem::DirectAccessSum,
        Problem::SelectionSum,
    ] {
        assert!(!classify(&q, &FdSet::empty(), &p).is_tractable(), "{p:?}");
    }
    // With the FD: everything tractable (R extends to cover {x, z}).
    for p in [
        Problem::DirectAccessLex(q.vars(&["x", "z"])),
        Problem::SelectionLex(q.vars(&["x", "z"])),
        Problem::DirectAccessSum,
        Problem::SelectionSum,
    ] {
        assert!(classify(&q, &fds, &p).is_tractable(), "{p:?}");
    }

    // LEX direct access by <x, z>.
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x", "z"]), &fds).unwrap();
    let got: Vec<Tuple> = da.iter().collect();
    assert_eq!(got, vec![tup(&[1, 5]), tup(&[2, 4]), tup(&[3, 5])]);
    for (k, t) in got.iter().enumerate() {
        assert_eq!(da.inverted_access(t), Some(k as u64));
    }
    // LEX selection agrees.
    let lex_handle =
        SelectionLexHandle::new(&q, &db.clone().freeze(), q.vars(&["x", "z"]), &fds).unwrap();
    for k in 0..3 {
        assert_eq!(lex_handle.select_once(k).as_ref(), got.get(k as usize));
    }
    // SUM direct access: weights 6, 6, 8.
    let sda = SumDirectAccess::build(&q, &db, &Weights::identity(), &fds).unwrap();
    let weights: Vec<f64> = (0..sda.len())
        .map(|k| sda.access_weighted(k).unwrap().0 .0)
        .collect();
    assert_eq!(weights, vec![6.0, 6.0, 8.0]);
    // SUM selection matches.
    let sum_handle =
        SelectionSumHandle::new(&q, &db.clone().freeze(), Weights::identity(), &fds).unwrap();
    for k in 0..3 {
        let (w, t) = sum_handle.select_once(k).unwrap();
        assert_eq!(w.0, weights[k as usize]);
        assert!(oracle.contains(&t));
    }
}

/// Example 8.3's triangle: the FD S: y → z makes the cyclic query
/// acyclic and fully tractable.
#[test]
fn example_8_3_triangle() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
    let fds = FdSet::parse(&q, &[("S", "y", "z")]);
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 2], vec![2, 3], vec![5, 2]])
        .with_i64_rows("S", 2, vec![vec![2, 3], vec![3, 1]])
        .with_i64_rows("T", 2, vec![vec![3, 1], vec![1, 2], vec![3, 5]]);
    let mut oracle = all_answers(&q, &db);
    oracle.sort();
    assert_eq!(
        oracle,
        vec![tup(&[1, 2, 3]), tup(&[2, 3, 1]), tup(&[5, 2, 3])]
    );

    assert!(!classify(&q, &FdSet::empty(), &Problem::DirectAccessSum).is_tractable());
    assert!(classify(&q, &fds, &Problem::DirectAccessSum).is_tractable());

    let da = LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &fds).unwrap();
    let got: Vec<Tuple> = da.iter().collect();
    assert_eq!(got, oracle);

    let sda = SumDirectAccess::build(&q, &db, &Weights::identity(), &fds).unwrap();
    let weights: Vec<f64> = (0..sda.len())
        .map(|k| sda.access_weighted(k).unwrap().0 .0)
        .collect();
    assert_eq!(weights, vec![6.0, 6.0, 10.0]);
}

/// Example 8.14 with data: the FD R: v1 → v3 reorders ⟨v1,v2,v3,v4⟩ into
/// the trio-free ⟨v1,v3,v2,v4⟩, and the produced order is still the
/// *requested* one.
#[test]
fn example_8_14_end_to_end() {
    let q = parse("Q(v1, v2, v3, v4) :- R(v1, v3), S(v3, v2), T(v2, v4)").unwrap();
    let lex = q.vars(&["v1", "v2", "v3", "v4"]);
    assert!(!classify(&q, &FdSet::empty(), &Problem::DirectAccessLex(lex.clone())).is_tractable());
    let fds = FdSet::parse(&q, &[("R", "v1", "v3")]);
    assert!(classify(&q, &fds, &Problem::DirectAccessLex(lex.clone())).is_tractable());

    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 30], vec![2, 40]])
        .with_i64_rows("S", 2, vec![vec![30, 7], vec![30, 8], vec![40, 7]])
        .with_i64_rows("T", 2, vec![vec![7, 100], vec![7, 200], vec![8, 100]]);
    let da = LexDirectAccess::build(&q, &db, &lex, &fds).unwrap();
    let got: Vec<Tuple> = da.iter().collect();
    // Oracle: sort answers by <v1, v2, v3, v4>. Because v1 determines v3,
    // this equals the internal <v1, v3, v2, v4> order.
    let mut oracle = all_answers(&q, &db);
    oracle.sort(); // head order (v1, v2, v3, v4) = requested order
    assert_eq!(got, oracle);
    assert_eq!(da.len(), 5);
    for (k, t) in got.iter().enumerate() {
        assert_eq!(da.inverted_access(t), Some(k as u64), "k={k}");
    }
}

/// Example 8.19: the FD S: v2 → v3 does *not* rescue ⟨v1, v2⟩ for direct
/// access (the reordered extension keeps a trio), but selection works.
#[test]
fn example_8_19_end_to_end() {
    let q = parse("Q(v1, v2) :- R(v1, v3), S(v3, v2)").unwrap();
    let fds = FdSet::parse(&q, &[("S", "v2", "v3")]);
    let lex = q.vars(&["v1", "v2"]);
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 30], vec![2, 40]])
        .with_i64_rows("S", 2, vec![vec![30, 7], vec![40, 8]]);
    assert!(matches!(
        LexDirectAccess::build(&q, &db, &lex, &fds),
        Err(BuildError::NotTractable(_))
    ));
    // Selection became tractable (Q⁺ is free-connex).
    let handle = SelectionLexHandle::new(&q, &db.freeze(), lex, &fds).unwrap();
    let got: Vec<Tuple> = (0..2).map(|k| handle.select_once(k).unwrap()).collect();
    assert_eq!(got, vec![tup(&[1, 7]), tup(&[2, 8])]);
}

/// FD violations are reported, not silently mis-answered.
#[test]
fn fd_violation_is_reported() {
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let fds = FdSet::parse(&q, &[("S", "y", "z")]);
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 10]])
        .with_i64_rows("S", 2, vec![vec![10, 5], vec![10, 6]]); // y=10 → two z's
    assert!(matches!(
        LexDirectAccess::build(&q, &db, &q.vars(&["x", "z"]), &fds),
        Err(BuildError::FdViolated(_))
    ));
    assert!(matches!(
        SelectionSumHandle::new(&q, &db.freeze(), Weights::identity(), &fds),
        Err(BuildError::FdViolated(_))
    ));
}

/// Randomized FD instances: LEX direct access under an FD always matches
/// the oracle sorted by the requested order.
#[test]
fn randomized_fd_instances_match_oracle() {
    use rand::{Rng, SeedableRng};
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let fds = FdSet::parse(&q, &[("S", "y", "z")]);
    let lex = q.vars(&["x", "z"]);
    for seed in 0..30u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // S: y → z by construction (one z per y).
        let ys: Vec<i64> = (0..6).collect();
        let s_rows: Vec<Vec<i64>> = ys
            .iter()
            .map(|&y| vec![y, rng.random_range(0..5)])
            .collect();
        let r_rows: Vec<Vec<i64>> = (0..rng.random_range(1..20))
            .map(|_| vec![rng.random_range(0..8), rng.random_range(0..8)])
            .collect();
        let db = Database::new()
            .with_i64_rows("R", 2, r_rows)
            .with_i64_rows("S", 2, s_rows);
        let da = LexDirectAccess::build(&q, &db, &lex, &fds).unwrap();
        let mut oracle = all_answers(&q, &db);
        oracle.sort(); // head order (x, z) = requested order
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, oracle, "seed={seed}");
        for (k, t) in got.iter().enumerate() {
            assert_eq!(da.inverted_access(t), Some(k as u64), "seed={seed} k={k}");
        }
    }
}
