//! Randomized cross-checks of the paper's structural lemmas — the
//! relationships between the combinatorial notions, validated over
//! generated query shapes (not just the worked examples).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ranked_access::prelude::*;
use ranked_access::rda_query::connex::{
    complete_order, ext_connex_pair, is_free_connex, is_s_connex, s_path_witness,
};
use ranked_access::rda_query::contraction::{alpha_free, fmh, maximal_contraction, mh};
use ranked_access::rda_query::trio::{find_disruptive_trio, is_reverse_elimination_order};
use ranked_access::rda_query::{gyo, layered};

/// Random CQ generator: random atoms over a small variable pool, random
/// head — cyclic and acyclic shapes alike.
fn random_cq(rng: &mut StdRng, max_atoms: usize, pool: usize) -> Cq {
    let names: Vec<String> = (0..pool).map(|i| format!("v{i}")).collect();
    let n_atoms = rng.random_range(1..=max_atoms);
    let mut b = CqBuilder::new("Q");
    let mut used: Vec<String> = Vec::new();
    let mut atoms = Vec::new();
    for i in 0..n_atoms {
        let arity = rng.random_range(1..=3.min(pool));
        let mut vars: Vec<String> = names.clone();
        vars.shuffle(rng);
        vars.truncate(arity);
        for v in &vars {
            if !used.contains(v) {
                used.push(v.clone());
            }
        }
        atoms.push((format!("R{i}"), vars));
    }
    // Random head: subset of used variables.
    let mut head = used.clone();
    head.shuffle(rng);
    head.truncate(rng.random_range(0..=head.len()));
    b = b.head(&head.iter().map(String::as_str).collect::<Vec<_>>());
    for (r, vars) in &atoms {
        b = b.atom(r, &vars.iter().map(String::as_str).collect::<Vec<_>>());
    }
    b.build()
}

/// Lemma 5.4: for acyclic CQs, an atom contains all free variables iff
/// `αfree(Q) ≤ 1`. Remark 4: `αfree(Q) ≤ fmh(Q)` always, and
/// `αfree ≤ 1 ⟺ fmh ≤ 1`.
#[test]
fn lemma_5_4_and_remark_4() {
    let mut rng = StdRng::seed_from_u64(54);
    for _ in 0..400 {
        let q = random_cq(&mut rng, 4, 6);
        let a = alpha_free(&q);
        assert!(a <= fmh(&q), "Remark 4 fails on {q}");
        if gyo::is_acyclic(&q.hypergraph()) {
            let covered = q
                .atoms()
                .iter()
                .any(|atom| q.free_set().is_subset(atom.var_set()));
            assert_eq!(covered, a <= 1, "Lemma 5.4 fails on {q} (αfree = {a})");
            assert_eq!(a <= 1, fmh(&q) <= 1, "Remark 4 fails on {q}");
        }
    }
}

/// The S-path characterization (Section 2.1): an acyclic hypergraph is
/// S-connex iff it has no S-path. Checked with S = free(Q).
#[test]
fn s_path_characterization() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut both = [0usize; 2];
    for _ in 0..400 {
        let q = random_cq(&mut rng, 4, 6);
        let h = q.hypergraph();
        if !gyo::is_acyclic(&h) {
            continue;
        }
        let connex = is_s_connex(&h, q.free_set());
        let path = s_path_witness(&h, q.free_set());
        assert_eq!(
            connex,
            path.is_none(),
            "S-path characterization fails on {q}"
        );
        both[usize::from(connex)] += 1;
        // Witness sanity: endpoints free, interior not.
        if let Some(p) = path {
            let free = q.free_set();
            assert!(free.contains(p[0]) && free.contains(*p.last().unwrap()));
            assert!(p[1..p.len() - 1].iter().all(|v| !free.contains(*v)));
            assert!(p.len() >= 3);
        }
    }
    assert!(
        both[0] > 10 && both[1] > 10,
        "generator covers both sides: {both:?}"
    );
}

/// Remark 1: for full acyclic CQs, trio-freeness of a complete order is
/// equivalent to its reverse being an elimination order.
#[test]
fn remark_1_on_random_queries() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..300 {
        let q = random_cq(&mut rng, 4, 5);
        let h = q.hypergraph();
        let mut order: Vec<VarId> = q.all_vars().iter().collect();
        order.shuffle(&mut rng);
        if !gyo::is_acyclic(&h) {
            continue;
        }
        assert_eq!(
            find_disruptive_trio(&h, &order).is_none(),
            is_reverse_elimination_order(&h, &order),
            "Remark 1 fails on {q} with {order:?}"
        );
    }
}

/// Lemma 3.9 both ways: a layered join tree for a full acyclic CQ and a
/// complete order exists iff there is no disruptive trio; when it
/// exists, its prefix-closure and containment invariants hold.
#[test]
fn lemma_3_9_layered_tree_iff_no_trio() {
    let mut rng = StdRng::seed_from_u64(39);
    let mut sides = [0usize; 2];
    for _ in 0..400 {
        let q = random_cq(&mut rng, 4, 5);
        let h = q.hypergraph();
        if !gyo::is_acyclic(&h) {
            continue;
        }
        // Work with the full version of the query.
        let all: Vec<VarId> = q.all_vars().iter().collect();
        if all.is_empty() {
            continue;
        }
        let mut order = all.clone();
        order.shuffle(&mut rng);
        let edges: Vec<VarSet> = q.atoms().iter().map(|a| a.var_set()).collect();
        let no_trio = find_disruptive_trio(&h, &order).is_none();
        let tree = layered::layered_join_tree(&edges, &order);
        assert_eq!(
            tree.is_some(),
            no_trio,
            "Lemma 3.9 fails on {q} with {order:?}"
        );
        sides[usize::from(no_trio)] += 1;
        if let Some(t) = tree {
            for (i, node) in t.layers.iter().enumerate() {
                // Node of layer i uses only order[..=i] and contains order[i].
                let prefix: VarSet = order[..=i].iter().copied().collect();
                assert!(node.vars.is_subset(prefix));
                assert!(node.vars.contains(order[i]));
                if let Some(p) = node.parent {
                    assert!(p < i);
                    assert!(node.vars.without(order[i]).is_subset(t.layers[p].vars));
                }
                // Assigned edges fit inside the node.
                for &e in &node.assigned_edges {
                    assert!(edges[e].is_subset(node.vars));
                }
            }
        }
    }
    assert!(
        sides[0] > 10 && sides[1] > 10,
        "generator covers both sides: {sides:?}"
    );
}

/// Lemma 4.4: whenever the tractability premises hold for a partial
/// order, the computed completion is a full trio-free order extending it.
#[test]
fn lemma_4_4_completions_are_sound() {
    let mut rng = StdRng::seed_from_u64(44);
    let mut completed = 0;
    for _ in 0..400 {
        let q = random_cq(&mut rng, 4, 6);
        if !is_free_connex(&q) {
            continue;
        }
        let mut free: Vec<VarId> = q.free().to_vec();
        free.shuffle(&mut rng);
        free.truncate(rng.random_range(0..=free.len()));
        let l = free;
        let h = q.hypergraph();
        let lset: VarSet = l.iter().copied().collect();
        let premises = find_disruptive_trio(&h, &l).is_none() && is_s_connex(&h, lset);
        match complete_order(&q, &l) {
            Some(full) => {
                assert!(premises, "completion without premises on {q}");
                completed += 1;
                assert_eq!(full[..l.len()], l[..], "not a prefix on {q}");
                let fset: VarSet = full.iter().copied().collect();
                assert_eq!(fset, q.free_set(), "must cover free({q})");
                assert!(
                    find_disruptive_trio(&h, &full).is_none(),
                    "trio in completion of {q}"
                );
            }
            None => assert!(!premises, "premises hold but no completion on {q}"),
        }
    }
    assert!(
        completed > 30,
        "generator exercises the positive side ({completed})"
    );
}

/// Proposition 4.3: the nested ext-connex trees exist exactly when both
/// levels are connex, and their marked subtrees cover exactly the sets.
#[test]
fn proposition_4_3_nested_trees() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..300 {
        let q = random_cq(&mut rng, 4, 6);
        let h = q.hypergraph();
        let outer = q.free_set();
        // inner: random subset of free.
        let mut inner_vars: Vec<VarId> = outer.iter().collect();
        inner_vars.shuffle(&mut rng);
        inner_vars.truncate(rng.random_range(0..=inner_vars.len()));
        let inner: VarSet = inner_vars.iter().copied().collect();
        let expect = is_s_connex(&h, outer) && is_s_connex(&h, inner);
        match ext_connex_pair(&h, outer, inner) {
            None => assert!(!expect, "premises hold but no tree on {q}"),
            Some(t) => {
                assert!(expect, "tree without premises on {q}");
                t.tree.validate().unwrap();
                assert_eq!(t.marked_vars(), outer);
                let inner_got = t
                    .inner_marked
                    .iter()
                    .fold(VarSet::EMPTY, |acc, &i| acc.union(t.tree.node(i).vars));
                assert_eq!(inner_got, inner);
                assert!(t.tree.is_connected_subset(&t.marked));
                assert!(t.tree.is_connected_subset(&t.inner_marked));
            }
        }
    }
}

/// Definition 7.5 invariants: the maximal contraction has `mh(Q)` atoms,
/// admits no further step, and keeps free variables unless absorbed by a
/// free variable.
#[test]
fn contraction_invariants() {
    let mut rng = StdRng::seed_from_u64(75);
    for _ in 0..300 {
        let q = random_cq(&mut rng, 4, 6);
        if !q.is_self_join_free() || q.atoms().is_empty() {
            continue;
        }
        let c = maximal_contraction(&q);
        assert_eq!(c.query.atoms().len(), mh(&q), "atom count ≠ mh on {q}");
        // Fixpoint: contracting again changes nothing.
        let again = maximal_contraction(&c.query);
        assert!(again.steps.is_empty(), "not a fixpoint on {q}");
        // Free variables never absorbed into existential ones.
        for step in &c.steps {
            if let ranked_access::rda_query::contraction::ContractionStep::AbsorbVar {
                removed,
                into,
            } = step
            {
                if q.free_set().contains(*removed) {
                    assert!(
                        q.free_set().contains(*into),
                        "free {removed:?} absorbed by existential {into:?} on {q}"
                    );
                }
            }
        }
    }
}
