//! Structure-randomized soundness: generate random *full acyclic*
//! queries (acyclic by construction — each new atom grafts onto an
//! existing one), random orders, and random databases; then check the
//! whole pipeline against the oracle. This exercises layered-join-tree
//! construction across shapes no hand-written catalog would cover.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ranked_access::prelude::*;

/// Build a random full acyclic CQ with `n_atoms` atoms over at most
/// `max_vars` variables. Construction: atom 0 takes fresh variables;
/// atom i shares a non-empty random subset of some earlier atom's
/// variables plus fresh ones — the grafting order is a join tree, so the
/// query is acyclic (and, being full, free-connex).
fn random_full_acyclic(rng: &mut StdRng, n_atoms: usize, max_vars: usize) -> Cq {
    let mut atoms: Vec<Vec<String>> = Vec::new();
    let mut next_var = 0usize;
    let fresh = |next_var: &mut usize| {
        let v = format!("v{next_var}");
        *next_var += 1;
        v
    };
    for i in 0..n_atoms {
        let mut vars: Vec<String> = Vec::new();
        if i > 0 {
            let host = rng.random_range(0..atoms.len());
            let host_vars = atoms[host].clone();
            let k = rng.random_range(1..=host_vars.len());
            let mut shared = host_vars;
            shared.shuffle(rng);
            shared.truncate(k);
            vars.extend(shared);
        }
        let fresh_count = if next_var >= max_vars {
            usize::from(vars.is_empty())
        } else {
            rng.random_range(if vars.is_empty() { 1 } else { 0 }..=2)
        };
        for _ in 0..fresh_count {
            vars.push(fresh(&mut next_var));
        }
        vars.dedup();
        atoms.push(vars);
    }
    let mut head: Vec<String> = Vec::new();
    for a in &atoms {
        for v in a {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
    }
    let mut b = CqBuilder::new("Q").head(&head.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, a) in atoms.iter().enumerate() {
        b = b.atom(
            &format!("R{i}"),
            &a.iter().map(String::as_str).collect::<Vec<_>>(),
        );
    }
    b.build()
}

fn random_db(rng: &mut StdRng, q: &Cq, rows: usize, domain: i64) -> Database {
    let mut db = Database::new();
    for atom in q.atoms() {
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// Pick a random order; retry until the classifier accepts one (the
/// empty order always does, so this terminates).
fn random_tractable_order(rng: &mut StdRng, q: &Cq) -> Vec<VarId> {
    let mut vars: Vec<VarId> = q.free().to_vec();
    for _ in 0..20 {
        vars.shuffle(rng);
        let len = rng.random_range(0..=vars.len());
        let lex: Vec<VarId> = vars[..len].to_vec();
        if classify(
            &q.clone(),
            &FdSet::empty(),
            &Problem::DirectAccessLex(lex.clone()),
        )
        .is_tractable()
        {
            return lex;
        }
    }
    Vec::new()
}

#[test]
fn random_acyclic_full_queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(20260612);
    let mut tractable_hits = 0;
    for round in 0..120 {
        let q = random_full_acyclic(&mut rng, 1 + (round % 5), 8);
        let db = random_db(&mut rng, &q, 1 + (round % 12), 4);
        let lex = random_tractable_order(&mut rng, &q);
        let da = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty())
            .unwrap_or_else(|e| panic!("round {round}: {q} with {lex:?}: {e}"));
        tractable_hits += 1;

        // Oracle comparison on the structure's internal complete order.
        let mut oracle = all_answers(&q, &db);
        let positions: Vec<usize> = da
            .internal_order()
            .iter()
            .map(|v| q.free().iter().position(|f| f == v).expect("full query"))
            .collect();
        oracle.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, oracle, "round {round}: {q} by {lex:?}");

        // Inverted access round-trips on a sample.
        for (k, t) in got.iter().enumerate().take(16) {
            assert_eq!(da.inverted_access(t), Some(k as u64), "round {round}");
        }

        // Selection agrees on a few ranks.
        let handle =
            SelectionLexHandle::new(&q, &db.clone().freeze(), lex.clone(), &FdSet::empty())
                .unwrap();
        for k in [0, got.len() as u64 / 2, got.len() as u64] {
            assert_eq!(handle.select_once(k), da.access(k), "round {round} k={k}");
        }
    }
    assert!(tractable_hits > 0);
}

#[test]
fn random_queries_sum_selection_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(777);
    let mut checked = 0;
    for round in 0..120 {
        let q = random_full_acyclic(&mut rng, 1 + (round % 4), 7);
        if !classify(&q, &FdSet::empty(), &Problem::SelectionSum).is_tractable() {
            continue;
        }
        checked += 1;
        let db = random_db(&mut rng, &q, 1 + (round % 10), 4);
        let oracle =
            MaterializedAccess::by_sum(&q, &db, |_, v| v.as_int().map_or(0.0, |i| i as f64));
        let handle = SelectionSumHandle::new(
            &q,
            &db.clone().freeze(),
            Weights::identity(),
            &FdSet::empty(),
        )
        .unwrap_or_else(|e| panic!("round {round}: {q}: {e}"));
        for k in [0u64, oracle.len() / 3, oracle.len().saturating_sub(1)] {
            let got = handle.select_once(k);
            match (got, oracle.weight_at(k)) {
                (Some((w, t)), Some(expect)) => {
                    assert_eq!(w, TotalF64(expect), "round {round}: {q} k={k}");
                    assert!(all_answers(&q, &db).contains(&t), "round {round}");
                }
                (None, None) => {}
                (got, expect) => {
                    panic!("round {round}: {q} k={k}: {got:?} vs weight {expect:?}")
                }
            }
        }
    }
    assert!(
        checked > 20,
        "the generator should produce plenty of fmh ≤ 2 queries"
    );
}

#[test]
fn random_cyclic_queries_via_decomposition() {
    use ranked_access::rda_core::lex_direct_access_decomposed;
    let mut rng = StdRng::seed_from_u64(4242);
    for round in 0..40 {
        // Random graph queries: k vars, binary atoms forming a random
        // graph with a cycle forced in.
        let k = 4 + (round % 3);
        let mut edges: Vec<(usize, usize)> = (0..k).map(|i| (i, (i + 1) % k)).collect(); // cycle
        for _ in 0..rng.random_range(0..3) {
            let a = rng.random_range(0..k);
            let b = rng.random_range(0..k);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.dedup();
        let names: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
        let mut b = CqBuilder::new("Q").head(&names.iter().map(String::as_str).collect::<Vec<_>>());
        for (i, &(x, y)) in edges.iter().enumerate() {
            b = b.atom(&format!("E{i}"), &[&names[x], &names[y]]);
        }
        let q = b.build();
        let db = random_db(&mut rng, &q, 12, 3);
        match lex_direct_access_decomposed(&q, &db, &[]) {
            Ok((da, _)) => {
                let mut got: Vec<Tuple> = da.iter().collect();
                got.sort();
                let mut expect = all_answers(&q, &db);
                expect.sort();
                assert_eq!(got, expect, "round {round}: {q}");
            }
            Err(e) => panic!("round {round}: {q}: {e}"),
        }
    }
}
