//! Structure-randomized soundness: generate random *full acyclic*
//! queries (acyclic by construction — each new atom grafts onto an
//! existing one), random orders, and random databases; then check the
//! whole pipeline against the oracle. This exercises layered-join-tree
//! construction across shapes no hand-written catalog would cover.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ranked_access::prelude::*;

/// Build a random full acyclic CQ with `n_atoms` atoms over at most
/// `max_vars` variables. Construction: atom 0 takes fresh variables;
/// atom i shares a non-empty random subset of some earlier atom's
/// variables plus fresh ones — the grafting order is a join tree, so the
/// query is acyclic (and, being full, free-connex).
fn random_full_acyclic(rng: &mut StdRng, n_atoms: usize, max_vars: usize) -> Cq {
    let mut atoms: Vec<Vec<String>> = Vec::new();
    let mut next_var = 0usize;
    let fresh = |next_var: &mut usize| {
        let v = format!("v{next_var}");
        *next_var += 1;
        v
    };
    for i in 0..n_atoms {
        let mut vars: Vec<String> = Vec::new();
        if i > 0 {
            let host = rng.random_range(0..atoms.len());
            let host_vars = atoms[host].clone();
            let k = rng.random_range(1..=host_vars.len());
            let mut shared = host_vars;
            shared.shuffle(rng);
            shared.truncate(k);
            vars.extend(shared);
        }
        let fresh_count = if next_var >= max_vars {
            usize::from(vars.is_empty())
        } else {
            rng.random_range(if vars.is_empty() { 1 } else { 0 }..=2)
        };
        for _ in 0..fresh_count {
            vars.push(fresh(&mut next_var));
        }
        vars.dedup();
        atoms.push(vars);
    }
    let mut head: Vec<String> = Vec::new();
    for a in &atoms {
        for v in a {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
    }
    let mut b = CqBuilder::new("Q").head(&head.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, a) in atoms.iter().enumerate() {
        b = b.atom(
            &format!("R{i}"),
            &a.iter().map(String::as_str).collect::<Vec<_>>(),
        );
    }
    b.build()
}

fn random_db(rng: &mut StdRng, q: &Cq, rows: usize, domain: i64) -> Database {
    let mut db = Database::new();
    for atom in q.atoms() {
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// Pick a random order; retry until the classifier accepts one under
/// `fds` (the empty order always does, so this terminates).
fn random_tractable_order_under(rng: &mut StdRng, q: &Cq, fds: &FdSet) -> Vec<VarId> {
    let mut vars: Vec<VarId> = q.free().to_vec();
    for _ in 0..20 {
        vars.shuffle(rng);
        let len = rng.random_range(0..=vars.len());
        let lex: Vec<VarId> = vars[..len].to_vec();
        if classify(q, fds, &Problem::DirectAccessLex(lex.clone())).is_tractable() {
            return lex;
        }
    }
    Vec::new()
}

fn random_tractable_order(rng: &mut StdRng, q: &Cq) -> Vec<VarId> {
    random_tractable_order_under(rng, q, &FdSet::empty())
}

/// Draw up to one random unary FD on an atom with at least two
/// variables (or none at all) — enough to put the classifier's
/// FD-extension machinery on the random path without making instance
/// repair ambiguous.
fn random_fd_set(rng: &mut StdRng, q: &Cq) -> FdSet {
    if rng.random_range(0..3) == 0 {
        return FdSet::empty();
    }
    let candidates: Vec<usize> = (0..q.atoms().len())
        .filter(|&i| q.atoms()[i].terms.len() >= 2)
        .collect();
    let Some(&ai) = candidates.get(rng.random_range(0..candidates.len().max(1))) else {
        return FdSet::empty();
    };
    let atom = &q.atoms()[ai];
    let lp = rng.random_range(0..atom.terms.len());
    let mut rp = rng.random_range(0..atom.terms.len());
    if rp == lp {
        rp = (rp + 1) % atom.terms.len();
    }
    FdSet::parse(
        q,
        &[(
            atom.relation.as_str(),
            q.var_name(atom.terms[lp]),
            q.var_name(atom.terms[rp]),
        )],
    )
}

/// Rewrite `db` so every declared FD holds: within each FD's relation,
/// the first tuple seen for a left-hand value fixes the right-hand
/// value of all its successors.
fn repair_fds(db: &mut Database, q: &Cq, fds: &FdSet) {
    use std::collections::HashMap;
    for fd in fds.iter() {
        let atom = q
            .atoms()
            .iter()
            .find(|a| a.relation == fd.relation)
            .expect("FD names a query atom");
        let lp = atom.terms.iter().position(|&t| t == fd.lhs).unwrap();
        let rp = atom.terms.iter().position(|&t| t == fd.rhs).unwrap();
        let rel = db.get(&fd.relation).expect("relation exists");
        let mut witness: HashMap<Value, Value> = HashMap::new();
        let repaired: Vec<Tuple> = rel
            .tuples()
            .iter()
            .map(|t| {
                let rhs = witness
                    .entry(t[lp].clone())
                    .or_insert_with(|| t[rp].clone())
                    .clone();
                t.iter()
                    .enumerate()
                    .map(|(p, v)| if p == rp { rhs.clone() } else { v.clone() })
                    .collect()
            })
            .collect();
        let arity = rel.arity();
        db.add(Relation::from_tuples(fd.relation.clone(), arity, repaired));
    }
}

#[test]
fn random_acyclic_full_queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(20260612);
    let mut tractable_hits = 0;
    for round in 0..120 {
        let q = random_full_acyclic(&mut rng, 1 + (round % 5), 8);
        let db = random_db(&mut rng, &q, 1 + (round % 12), 4);
        let lex = random_tractable_order(&mut rng, &q);
        let da = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty())
            .unwrap_or_else(|e| panic!("round {round}: {q} with {lex:?}: {e}"));
        tractable_hits += 1;

        // Oracle comparison on the structure's internal complete order.
        let mut oracle = all_answers(&q, &db);
        let positions: Vec<usize> = da
            .internal_order()
            .iter()
            .map(|v| q.free().iter().position(|f| f == v).expect("full query"))
            .collect();
        oracle.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, oracle, "round {round}: {q} by {lex:?}");

        // Inverted access round-trips on a sample.
        for (k, t) in got.iter().enumerate().take(16) {
            assert_eq!(da.inverted_access(t), Some(k as u64), "round {round}");
        }

        // Selection agrees on a few ranks.
        let handle =
            SelectionLexHandle::new(&q, &db.clone().freeze(), lex.clone(), &FdSet::empty())
                .unwrap();
        for k in [0, got.len() as u64 / 2, got.len() as u64] {
            assert_eq!(handle.select_once(k), da.access(k), "round {round} k={k}");
        }
    }
    assert!(tractable_hits > 0);
}

/// Random queries with random FD sets and random *windowed* access:
/// the classifier's FD-extension path, and the pagination surface
/// (`access_range` / `top_k` / `page` / resumable streams), both under
/// differential test against the sorted-oracle — previously only plain
/// per-rank access was fuzzed, and only without FDs.
#[test]
fn random_queries_with_fds_windows_and_streams_match_oracle() {
    let mut rng = StdRng::seed_from_u64(20260729);
    let mut fd_rounds = 0;
    let mut fd_rescued = 0;
    for round in 0..150 {
        let q = random_full_acyclic(&mut rng, 1 + (round % 4), 7);
        let mut db = random_db(&mut rng, &q, 2 + (round % 10), 5);
        let fds = random_fd_set(&mut rng, &q);
        repair_fds(&mut db, &q, &fds);
        if !fds.is_empty() {
            fd_rounds += 1;
        }
        let lex = random_tractable_order_under(&mut rng, &q, &fds);
        // Track how often the FDs *rescued* an order the plain
        // classifier rejects — the extension path proper.
        if !fds.is_empty()
            && !classify(&q, &FdSet::empty(), &Problem::DirectAccessLex(lex.clone())).is_tractable()
        {
            fd_rescued += 1;
        }
        let da = LexDirectAccess::build(&q, &db, &lex, &fds)
            .unwrap_or_else(|e| panic!("round {round}: {q} with {lex:?}: {e}"));

        // Oracle: answers sorted by the structure's internal complete
        // order. Under FDs the completion may omit functionally
        // determined variables; the comparator is still total on
        // answers (determined components agree whenever the rest do).
        let mut oracle = all_answers(&q, &db);
        let positions: Vec<usize> = da
            .internal_order()
            .iter()
            .map(|v| q.free().iter().position(|f| f == v).expect("full query"))
            .collect();
        oracle.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let got: Vec<Tuple> = da.iter().collect();
        assert_eq!(got, oracle, "round {round}: {q} by {lex:?} under {fds:?}");

        // The windowed surface against oracle slices, clamping
        // included.
        let len = da.len();
        let windows = [
            (0, len.min(3)),
            (len / 3, (len / 3 + 4).min(len)),
            (len.saturating_sub(2), len),
            (len, len + 2),
            (len + 3, len + 6),
        ];
        for (lo, hi) in windows {
            let expect = &oracle[lo.min(len) as usize..hi.min(len) as usize];
            assert_eq!(
                da.access_range(lo..hi),
                expect,
                "round {round}: window {lo}..{hi} of {q}"
            );
        }
        assert_eq!(da.top_k(4), oracle[..len.min(4) as usize], "round {round}");
        assert_eq!(
            da.page(len / 2, 3),
            oracle[(len / 2) as usize..(len / 2 + 3).min(len) as usize],
            "round {round}"
        );

        // Inverted access round-trips on a sample (FD derivations
        // included).
        for (k, t) in got.iter().enumerate().take(12) {
            assert_eq!(da.inverted_access(t), Some(k as u64), "round {round}");
        }

        // Streams: full, resumed mid-way, and partially consumed.
        let answers = RankedAnswers::Lex(da);
        let streamed: Vec<Tuple> = answers.stream().collect();
        assert_eq!(streamed, oracle, "round {round}: stream of {q}");
        let resumed: Vec<Tuple> = answers.stream_from(len / 2).collect();
        assert_eq!(resumed, oracle[(len / 2) as usize..], "round {round}");
        let prefix: Vec<Tuple> = answers.stream().take(3).collect();
        assert_eq!(prefix, oracle[..len.min(3) as usize], "round {round}");
    }
    assert!(fd_rounds > 40, "FD sets must be drawn often ({fd_rounds})");
    assert!(
        fd_rescued > 0,
        "some rounds must exercise FD-rescued orders"
    );
}

#[test]
fn random_queries_sum_selection_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(777);
    let mut checked = 0;
    for round in 0..120 {
        let q = random_full_acyclic(&mut rng, 1 + (round % 4), 7);
        if !classify(&q, &FdSet::empty(), &Problem::SelectionSum).is_tractable() {
            continue;
        }
        checked += 1;
        let db = random_db(&mut rng, &q, 1 + (round % 10), 4);
        let oracle =
            MaterializedAccess::by_sum(&q, &db, |_, v| v.as_int().map_or(0.0, |i| i as f64));
        let handle = SelectionSumHandle::new(
            &q,
            &db.clone().freeze(),
            Weights::identity(),
            &FdSet::empty(),
        )
        .unwrap_or_else(|e| panic!("round {round}: {q}: {e}"));
        for k in [0u64, oracle.len() / 3, oracle.len().saturating_sub(1)] {
            let got = handle.select_once(k);
            match (got, oracle.weight_at(k)) {
                (Some((w, t)), Some(expect)) => {
                    assert_eq!(w, TotalF64(expect), "round {round}: {q} k={k}");
                    assert!(all_answers(&q, &db).contains(&t), "round {round}");
                }
                (None, None) => {}
                (got, expect) => {
                    panic!("round {round}: {q} k={k}: {got:?} vs weight {expect:?}")
                }
            }
        }
    }
    assert!(
        checked > 20,
        "the generator should produce plenty of fmh ≤ 2 queries"
    );
}

#[test]
fn random_cyclic_queries_via_decomposition() {
    use ranked_access::rda_core::lex_direct_access_decomposed;
    let mut rng = StdRng::seed_from_u64(4242);
    for round in 0..40 {
        // Random graph queries: k vars, binary atoms forming a random
        // graph with a cycle forced in.
        let k = 4 + (round % 3);
        let mut edges: Vec<(usize, usize)> = (0..k).map(|i| (i, (i + 1) % k)).collect(); // cycle
        for _ in 0..rng.random_range(0..3) {
            let a = rng.random_range(0..k);
            let b = rng.random_range(0..k);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.dedup();
        let names: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
        let mut b = CqBuilder::new("Q").head(&names.iter().map(String::as_str).collect::<Vec<_>>());
        for (i, &(x, y)) in edges.iter().enumerate() {
            b = b.atom(&format!("E{i}"), &[&names[x], &names[y]]);
        }
        let q = b.build();
        let db = random_db(&mut rng, &q, 12, 3);
        match lex_direct_access_decomposed(&q, &db, &[]) {
            Ok((da, _)) => {
                let mut got: Vec<Tuple> = da.iter().collect();
                got.sort();
                let mut expect = all_answers(&q, &db);
                expect.sort();
                assert_eq!(got, expect, "round {round}: {q}");
            }
            Err(e) => panic!("round {round}: {q}: {e}"),
        }
    }
}
