//! Differential tests for the ranked window & batch layer: on every
//! backend, `access_range(lo..hi)` must equal the sequence of
//! `access(k)` results (including empty, full-span, inverted, and
//! out-of-bounds windows), the `*_into` variants must agree with their
//! owned twins, `stream()` must enumerate exactly the answer sequence,
//! and the lazy ranked-enumeration path must match the any-k baseline
//! oracle prefix-for-prefix without materializing the answer set.

use ranked_access::prelude::*;
use ranked_access::rda_db::Value;
use ranked_access::rda_query::VarId;

fn ident(_: VarId, v: &Value) -> f64 {
    v.as_int().map_or(0.0, |i| i as f64)
}

/// A 2-path instance with a few hundred answers.
fn two_path_db() -> Database {
    Database::new()
        .with_i64_rows("R", 2, (0..60).map(|i| vec![i, i % 7]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..60).map(|j| vec![j % 7, j]).collect::<Vec<_>>())
}

/// A 3-path instance (fmh = 3: the any-k fallback territory) with a
/// few thousand answers.
fn three_path_db() -> Database {
    Database::new()
        .with_i64_rows("R", 2, (0..40).map(|i| vec![i, i % 4]).collect::<Vec<_>>())
        .with_i64_rows(
            "S",
            2,
            (0..20).map(|j| vec![j % 4, j % 5]).collect::<Vec<_>>(),
        )
        .with_i64_rows("T", 2, (0..40).map(|k| vec![k % 5, k]).collect::<Vec<_>>())
}

/// The windowed contract, checked against repeated single access: every
/// window shape — empty, full-span, clamped, inverted, fully
/// out-of-bounds — plus `top_k` / `page`, the `*_into` twins, and the
/// stream, on one prepared plan.
fn assert_windows(label: &str, plan: &AccessPlan) {
    let len = plan.len();
    let singles =
        |lo: u64, hi: u64| -> Vec<Tuple> { (lo..hi).map_while(|k| plan.access(k)).collect() };

    let windows: Vec<(u64, u64)> = vec![
        (0, 0),                           // empty at the start
        (len, len),                       // empty at the end
        (0, len),                         // full span
        (0, len + 100),                   // clamped full span
        (len, len + 5),                   // entirely out of bounds
        (len + 3, len + 7),               // far out of bounds
        (len.saturating_sub(1), len + 5), // straddling the end
        (0, 1),
        (len / 2, len / 2 + 7),
        (len / 3, (2 * len) / 3),
        (7, 3), // inverted ⇒ empty
    ];
    for &(lo, hi) in &windows {
        let expect = singles(lo, hi);
        assert_eq!(
            plan.access_range(lo..hi),
            expect,
            "{label}: access_range({lo}..{hi})"
        );
        let mut buf = WindowBuf::new();
        let n = plan.window_into(lo..hi, &mut buf);
        assert_eq!(n as usize, expect.len(), "{label}: window_into({lo}..{hi})");
        assert_eq!(buf.len(), expect.len(), "{label}: buffer rows");
        assert_eq!(
            buf.to_tuples(),
            expect,
            "{label}: window_into({lo}..{hi}) rows"
        );
        assert_eq!(
            plan.window(lo..hi).to_tuples(),
            expect,
            "{label}: window({lo}..{hi})"
        );
    }

    // One buffer across many pages: reuse must not leak rows between
    // fills.
    let mut buf = WindowBuf::new();
    let mut paged: Vec<Tuple> = Vec::new();
    let page = 7u64;
    let mut offset = 0u64;
    loop {
        let n = plan.window_into(offset..offset + page, &mut buf);
        paged.extend(buf.to_tuples());
        offset += n;
        if n < page {
            break;
        }
    }
    assert_eq!(paged, singles(0, len), "{label}: paged scan");

    assert_eq!(plan.top_k(3), singles(0, 3), "{label}: top_k");
    assert_eq!(
        plan.top_k(len + 10),
        singles(0, len),
        "{label}: top_k clamp"
    );
    assert_eq!(plan.page(2, 4), singles(2, 6), "{label}: page");
    assert_eq!(
        plan.page(len.saturating_sub(2), u64::MAX),
        singles(len.saturating_sub(2), len),
        "{label}: page saturates"
    );
    let mut buf = WindowBuf::new();
    assert_eq!(plan.top_k_into(4, &mut buf), singles(0, 4).len() as u64);
    assert_eq!(buf.to_tuples(), singles(0, 4), "{label}: top_k_into");
    assert_eq!(plan.page_into(3, 4, &mut buf), singles(3, 7).len() as u64);
    assert_eq!(buf.to_tuples(), singles(3, 7), "{label}: page_into");

    // The stream is the whole answer sequence, resumable anywhere.
    let streamed: Vec<Tuple> = plan.stream().collect();
    assert_eq!(streamed, singles(0, len), "{label}: stream");
    let prefix: Vec<Tuple> = plan.stream().take(5).collect();
    assert_eq!(prefix, singles(0, 5.min(len)), "{label}: stream prefix");
    let tail: Vec<Tuple> = plan.stream_from(len / 2).collect();
    assert_eq!(tail, singles(len / 2, len), "{label}: stream_from");
    let mut s = plan.stream();
    s.next();
    s.next();
    assert_eq!(s.position(), 2.min(len), "{label}: stream position");
}

#[test]
fn windows_on_native_lex_direct_access() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(two_path_db().freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert!(plan.len() > 300, "workload big enough to page through");
    assert_windows("lex-da", &plan);
}

#[test]
fn windows_on_partial_order_and_product_shape() {
    // A branching layered tree (cartesian product) and a partial order:
    // the walk's carry logic must hold beyond chain-shaped trees.
    let q = parse("Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..25).map(|i| vec![i % 9, i]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..25).map(|j| vec![j % 8, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    for order in [
        vec!["v1", "v2", "v3", "v4"],
        vec!["v2", "v1", "v4", "v3"],
        vec!["v3", "v1"],
    ] {
        let plan = engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &order),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(plan.backend(), Backend::LexDirectAccess);
        assert_eq!(plan.len(), 625);
        assert_windows(&format!("lex-da product {order:?}"), &plan);
    }

    // A star query whose layered tree genuinely branches: the root
    // layer has two children, so the walk's carry must re-derive
    // sibling buckets, not just a chain suffix.
    let qs = parse("Q(a, b, c) :- R(a, b), T(a, c)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..40).map(|i| vec![i % 6, i]).collect::<Vec<_>>())
        .with_i64_rows("T", 2, (0..40).map(|j| vec![j % 6, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &qs,
            OrderSpec::lex(&qs, &["a", "b", "c"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert!(plan.len() > 250, "star join big enough to page");
    assert_windows("lex-da star", &plan);
}

#[test]
fn windows_on_native_sum_direct_access() {
    let q = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(two_path_db().freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SumDirectAccess);
    assert_windows("sum-da", &plan);
}

#[test]
fn windows_on_selection_lex() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    // Small instance: selection pays O(n) per access and the contract
    // check runs many singles.
    let db = Database::new()
        .with_i64_rows("R", 2, (0..12).map(|i| vec![i, i % 3]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..12).map(|j| vec![j % 3, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionLex);
    assert_windows("selection-lex", &plan);
}

#[test]
fn windows_on_selection_sum() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..10).map(|i| vec![i, i % 3]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..10).map(|j| vec![j % 3, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    assert_windows("selection-sum", &plan);
}

#[test]
fn windows_on_materialized_fallback() {
    let q = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(two_path_db().freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z"]),
            &FdSet::empty(),
            Policy::Materialize,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::Materialized);
    assert_windows("materialized", &plan);
}

#[test]
fn windows_on_ranked_enum_fallback() {
    let q = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let engine = Engine::new(three_path_db().freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::RankedEnum);
    assert_windows("ranked-enum", &plan);
}

#[test]
fn windows_on_boolean_and_empty_plans() {
    let q = parse("Q() :- R(x, y), S(y, z)").unwrap();
    let engine = Engine::new(two_path_db().freeze());
    let plan = engine
        .prepare(&q, OrderSpec::Lex(vec![]), &FdSet::empty(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.len(), 1);
    assert_eq!(plan.access_range(0..5), vec![Tuple::new(vec![])]);
    let mut buf = WindowBuf::new();
    assert_eq!(plan.window_into(0..5, &mut buf), 1);
    assert_eq!(buf.arity(), 0);
    assert_eq!(buf.to_tuples(), vec![Tuple::new(vec![])]);
    assert_windows("boolean", &plan);

    let qf = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let empty = Engine::new(
        Database::new()
            .with_i64_rows("R", 2, vec![])
            .with_i64_rows("S", 2, vec![])
            .freeze(),
    );
    for spec in [
        OrderSpec::lex(&qf, &["x", "y", "z"]),
        OrderSpec::sum_by_value(),
    ] {
        let plan = empty
            .prepare(&qf, spec, &FdSet::empty(), Policy::Reject)
            .unwrap();
        assert!(plan.is_empty());
        assert!(plan.access_range(0..10).is_empty());
        assert_eq!(plan.stream().count(), 0);
        assert_windows("empty", &plan);
    }
}

#[test]
fn windows_under_fds_walk_the_reordered_arena() {
    // Example 1.1's FD-rescued order: the internal order contains a
    // promoted variable, so the walk decodes head positions out of
    // arena order.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let fds = FdSet::parse(&q, &[("R", "x", "y")]);
    let db = Database::new()
        .with_i64_rows("R", 2, (0..30).map(|i| vec![i, i % 5]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..30).map(|j| vec![j % 5, j]).collect::<Vec<_>>());
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &fds,
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    assert!(plan.len() > 100);
    assert_windows("lex-da under FDs", &plan);
}

#[test]
fn lazy_ranked_enum_matches_the_baseline_oracle_prefix_for_prefix() {
    let q = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let db = three_path_db();
    let engine = Engine::new(db.clone().freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::RankedEnum);

    let oracle_total = ranked_prefix(&q, &db, ident, usize::MAX);
    assert!(oracle_total.len() > 1000, "needs a non-trivial stream");
    for k in [0usize, 1, 2, 7, 63, 256, 257, 1000, oracle_total.len()] {
        let got: Vec<Tuple> = plan.stream().take(k).collect();
        let expect: Vec<Tuple> = oracle_total
            .iter()
            .take(k)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(got, expect, "prefix of length {k}");
    }
    // Weights agree with the materialize-and-sort oracle, rank by rank.
    let mat = MaterializedAccess::by_sum(&q, &db, ident);
    assert_eq!(mat.len() as usize, oracle_total.len());
    for (k, (w, _)) in oracle_total.iter().enumerate() {
        assert_eq!(*w, mat.weight_at(k as u64).unwrap(), "weight at rank {k}");
    }
}

#[test]
fn ranked_enum_policy_never_materializes() {
    // (a) The fallback backend: streaming a prefix advances the any-k
    // enumerator only as far as one batch, never the full answer set.
    let q = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let db = three_path_db();
    let total = MaterializedAccess::by_sum(&q, &db, ident).len();
    assert!(total > 1000);
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    let first: Vec<Tuple> = plan.stream().take(10).collect();
    assert_eq!(first.len(), 10);
    let RankedAnswers::RankedEnum(handle) = plan.answers() else {
        panic!("expected the any-k fallback backend");
    };
    let cached = handle.cached_prefix_len();
    assert!(
        (10..total / 2).contains(&cached),
        "stream().take(10) must advance at most one batch \
         (cached {cached} of {total})"
    );

    // (b) Tractable queries under the same policy route to the paper's
    // structures — never to the materialize-and-sort fallback.
    let qc = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let engine2 = Engine::new(two_path_db().freeze());
    let plan2 = engine2
        .prepare(
            &qc,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan2.backend(), Backend::SumDirectAccess);
    assert!(!plan2.backend().is_fallback());
    let ql = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let plan3 = engine2
        .prepare(
            &ql,
            OrderSpec::lex(&ql, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::RankedEnum,
        )
        .unwrap();
    assert_eq!(plan3.backend(), Backend::LexDirectAccess);
    assert_eq!(plan3.stream().take(4).count(), 4);
}

#[test]
fn selection_sum_windows_stay_lazy_on_distinct_weights() {
    // Distinct answer weights (positional encoding) keep the selection
    // handle off its tie-breaking materialized index: paging through a
    // window must not build it.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows("R", 2, (0..10).map(|i| vec![i, i % 3]).collect::<Vec<_>>())
        .with_i64_rows("S", 2, (0..10).map(|j| vec![j % 3, j]).collect::<Vec<_>>());
    let mut w = Weights::zero();
    for val in 0..10 {
        w.set(q.var("x").unwrap(), val, val as f64 * 10_000.0);
        w.set(q.var("y").unwrap(), val, val as f64 * 100.0);
        w.set(q.var("z").unwrap(), val, val as f64);
    }
    let engine = Engine::new(db.freeze());
    let plan = engine
        .prepare(&q, OrderSpec::sum(w), &FdSet::empty(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    let page = plan.page(2, 5);
    assert_eq!(page.len(), 5);
    let RankedAnswers::SelectionSum(handle) = plan.answers() else {
        panic!("expected the selection-sum backend");
    };
    assert!(
        !handle.tie_index_built(),
        "distinct-weight windows must not materialize the tie index"
    );
}
