//! The forced-shard differential suite: every shard count in
//! {1, 2, 3, 7}, sharded engines vs. the unsharded oracle, on the full
//! direct-access surface.
//!
//! [`ShardSpec::Forced`] makes sharding a *deterministic* test mode: a
//! 1-core CI host exercises exactly the partition/build/merge/route
//! paths a 64-core host would, so every property here is
//! host-independent. The properties:
//!
//! * **Differential equality** — a plan prepared on an
//!   `Engine::with_shards(_, Forced(n))` engine serves bit-identical
//!   answers to a from-scratch [`MaterializedAccess`] rebuild at every
//!   rank, window, batch, inverted probe, and
//!   `rank_of_lower_bound` probe — for lex (per-shard structures behind
//!   a contiguous rank routing table) and sum (per-shard builds merged
//!   by weight) alike.
//! * **Routing honesty** — `explain().routing()` reports the real shard
//!   count and offsets: contiguous for lex (`shard_of` brackets every
//!   rank), weight-merged for sum (per-shard row counts sum to the
//!   answer count).
//! * **Delta incrementality** — across `freeze_delta` generations only
//!   the dirtied relations re-partition; a clean relation's whole
//!   per-shard vector is carried `Arc`-pointer-identically
//!   ([`ShardedSnapshot::parts_arc`]), and the engine's advance path
//!   preserves the shard count while staying differentially correct.

use proptest::prelude::*;
use ranked_access::prelude::*;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn t2(a: i64, b: i64) -> Tuple {
    [Value::int(a), Value::int(b)].into_iter().collect()
}

fn no_fds() -> FdSet {
    FdSet::empty()
}

/// A 2-path instance whose join fans out enough to populate every
/// shard under any count in [`SHARD_COUNTS`], plus a never-mutated `T`.
fn seed_db() -> Database {
    Database::new()
        .with_i64_rows(
            "R",
            2,
            (0..30i64).map(|i| vec![(i * 3) % 13, (i * 5 + 1) % 11]),
        )
        .with_i64_rows(
            "S",
            2,
            (0..26i64).map(|i| vec![(i * 5 + 1) % 11, (i * 7 + 2) % 9]),
        )
        .with_i64_rows("T", 1, vec![vec![0], vec![4]])
}

fn by_weight(_v: VarId, val: &Value) -> f64 {
    val.as_int().map_or(0.0, |i| i as f64)
}

/// The full access surface of `plan` against the oracle answer array:
/// every rank, every inverted probe, windows (including ones straddling
/// every shard boundary), and batches with duplicates, reversals and
/// out-of-range tails.
fn check_surface(plan: &AccessPlan, oracle: &[Tuple], boundaries: &[u64], ctx: &str) {
    let len = plan.len();
    assert_eq!(len, oracle.len() as u64, "{ctx}: answer count");
    for (k, expect) in oracle.iter().enumerate() {
        let k = k as u64;
        assert_eq!(plan.access(k).as_ref(), Some(expect), "{ctx}: access({k})");
        assert_eq!(
            plan.inverted_access(expect),
            Some(k),
            "{ctx}: inverted_access({expect})"
        );
    }
    assert_eq!(plan.access(len), None, "{ctx}: out of bounds");
    let streamed: Vec<Tuple> = plan.stream().collect();
    assert_eq!(streamed, oracle, "{ctx}: full stream");

    // Windows: whole, empty, clamped, and one straddling each shard
    // boundary (the seam the router must stitch invisibly).
    let mut ranges = vec![0..len, 0..0, len / 3..(2 * len) / 3, len / 2..len + 7];
    for &b in boundaries {
        ranges.push(b.saturating_sub(1)..(b + 2).min(len + 1));
        ranges.push(b.saturating_sub(3)..(b + 4).min(len + 1));
    }
    for r in ranges {
        let expect = &oracle[(r.start.min(len) as usize)..(r.end.min(len) as usize)];
        assert_eq!(plan.access_range(r.clone()), expect, "{ctx}: window {r:?}");
    }

    // Batches: the contract is per-rank access in request order,
    // out-of-range ranks skipped — shard-run batching must not change it.
    let mut batches: Vec<Vec<u64>> = vec![
        vec![],
        (0..len).rev().collect(),
        vec![len, len + 9, u64::MAX],
        vec![len / 2; 4],
        (0..90u64)
            .map(|i| i.wrapping_mul(7919) % (len + 5))
            .collect(),
    ];
    batches.push(
        boundaries
            .iter()
            .flat_map(|&b| [b, b.saturating_sub(1), b])
            .collect(),
    );
    let mut buf = WindowBuf::new();
    for ranks in &batches {
        let expect: Vec<Tuple> = ranks
            .iter()
            .filter(|&&k| k < len)
            .map(|&k| oracle[k as usize].clone())
            .collect();
        assert_eq!(plan.access_batch(ranks), expect, "{ctx}: batch {ranks:?}");
        let n = plan.access_batch_into(ranks, &mut buf);
        assert_eq!(n as usize, expect.len(), "{ctx}: batch_into count");
        assert_eq!(buf.to_tuples(), expect, "{ctx}: batch_into rows");
    }
}

/// `rank_of_lower_bound` on answers plus an off-answer probe grid,
/// against counting the strictly-smaller answers by hand. The plan must
/// be lex-native (plain or sharded — both expose the probe API).
fn check_lower_bounds(plan: &AccessPlan, oracle: &[Tuple], ctx: &str) {
    let lower_bound = |probe: &Tuple| match plan.answers() {
        RankedAnswers::Lex(da) => da.rank_of_lower_bound(probe),
        RankedAnswers::ShardedLex(da) => da.rank_of_lower_bound(probe),
        _ => panic!("{ctx}: expected the native lex backend"),
    };
    let t1 = |a: i64| -> Tuple { [Value::int(a)].into_iter().collect() };
    let probes = oracle
        .iter()
        .cloned()
        .chain((-1..14).flat_map(|a| (0..11).map(move |b| t2(a, b).concat(&t1((a + b) % 9)))));
    for probe in probes {
        let expect = oracle.iter().filter(|t| **t < probe).count() as u64;
        assert_eq!(
            lower_bound(&probe),
            Some(expect),
            "{ctx}: lower bound of {probe}"
        );
    }
}

/// Lex routing must be contiguous and bracket every rank; the reported
/// offsets are the sharded structure's own.
fn check_lex_routing(plan: &AccessPlan, shards: usize, ctx: &str) -> Vec<u64> {
    assert_eq!(plan.backend(), Backend::LexDirectAccess, "{ctx}: backend");
    let routing = plan
        .explain()
        .routing()
        .unwrap_or_else(|| panic!("{ctx}: sharded engine must report routing"))
        .clone();
    assert!(routing.is_contiguous(), "{ctx}: lex routing is contiguous");
    assert_eq!(routing.shards(), shards, "{ctx}: shard count");
    let offsets = routing.offsets().to_vec();
    assert_eq!(offsets.len(), shards + 1, "{ctx}: offset table length");
    assert_eq!(offsets[0], 0, "{ctx}: offsets start at rank 0");
    assert_eq!(
        *offsets.last().unwrap(),
        plan.len(),
        "{ctx}: offsets end at len"
    );
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "{ctx}: offsets monotone"
    );
    for k in 0..plan.len() {
        let s = routing
            .shard_of(k)
            .unwrap_or_else(|| panic!("{ctx}: rank {k} must route"));
        assert!(
            offsets[s] <= k && k < offsets[s + 1],
            "{ctx}: rank {k} routed to shard {s} outside [{}, {})",
            offsets[s],
            offsets[s + 1]
        );
        assert_eq!(
            routing.shard_rows(s),
            offsets[s + 1] - offsets[s],
            "{ctx}: rows"
        );
    }
    assert_eq!(
        routing.shard_of(plan.len()),
        None,
        "{ctx}: past-the-end rank"
    );
    match plan.answers() {
        RankedAnswers::Lex(_) => assert_eq!(shards, 1, "{ctx}: plain lex only at one shard"),
        RankedAnswers::ShardedLex(da) => {
            assert_eq!(da.shard_count(), shards, "{ctx}: structure shard count");
            assert_eq!(
                da.shard_offsets(),
                &offsets[..],
                "{ctx}: routing mirrors structure"
            );
        }
        _ => panic!("{ctx}: expected a lex-native answer structure"),
    }
    assert!(
        format!("{}", plan.explain()).contains("shards:"),
        "{ctx}: explain renders the shard line"
    );
    // Interior boundaries, for seam-straddling window probes.
    offsets[1..shards].to_vec()
}

/// Sum routing is weight-merged: per-shard row counts that sum to the
/// answer count, no rank→shard map.
fn check_sum_routing(plan: &AccessPlan, shards: usize, ctx: &str) {
    assert_eq!(plan.backend(), Backend::SumDirectAccess, "{ctx}: backend");
    let routing = plan
        .explain()
        .routing()
        .unwrap_or_else(|| panic!("{ctx}: sharded engine must report routing"));
    assert!(
        !routing.is_contiguous() || shards == 1,
        "{ctx}: sum routing is merged"
    );
    assert_eq!(routing.shards(), shards, "{ctx}: shard count");
    let total: u64 = (0..shards).map(|s| routing.shard_rows(s)).sum();
    assert_eq!(total, plan.len(), "{ctx}: per-shard rows sum to len");
    if shards > 1 {
        assert_eq!(
            routing.shard_of(0),
            None,
            "{ctx}: merged routing has no rank map"
        );
    }
}

/// One stop for "this engine, this data, every backend": lex and sum
/// plans against fresh materialized oracles, surface + routing + probes.
fn verify_sharded_engine(db: &Database, engine: &Engine, shards: usize) {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qcov = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let ctx = format!("{shards} shards");

    let lex_oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, db, &q.vars(&["x", "y", "z"]))
        .iter()
        .collect();
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    let boundaries = check_lex_routing(&plan, shards, &format!("{ctx}/lex"));
    check_surface(&plan, &lex_oracle, &boundaries, &format!("{ctx}/lex"));
    check_lower_bounds(&plan, &lex_oracle, &format!("{ctx}/lex"));

    let sum_oracle: Vec<Tuple> = MaterializedAccess::by_sum(&qcov, db, by_weight)
        .iter()
        .collect();
    let plan = engine
        .prepare(&qcov, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
        .unwrap();
    check_sum_routing(&plan, shards, &format!("{ctx}/sum"));
    check_surface(&plan, &sum_oracle, &[], &format!("{ctx}/sum"));
}

/// The headline differential: every forced shard count serves exactly
/// what the unsharded oracle serves, on every backend and probe.
#[test]
fn forced_shard_counts_match_the_unsharded_oracle() {
    let db = seed_db();
    for n in SHARD_COUNTS {
        let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(n));
        assert_eq!(engine.shard_count(), n);
        verify_sharded_engine(&db, &engine, n);
    }
}

/// Sharded and unsharded engines are not merely oracle-equal — their
/// answers are pairwise bit-identical, rank by rank, at every count.
#[test]
fn sharded_engines_agree_pairwise_with_a_forced_single_shard() {
    let db = seed_db();
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let baseline = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(1))
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    for n in SHARD_COUNTS {
        let plan = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(n))
            .prepare(
                &q,
                OrderSpec::lex(&q, &["x", "y", "z"]),
                &no_fds(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(plan.len(), baseline.len());
        for k in 0..plan.len() {
            assert_eq!(plan.access(k), baseline.access(k), "{n} shards, rank {k}");
        }
    }
}

/// Three `freeze_delta` generations through the engine's advance path:
/// the shard count is sticky, the sharded view tracks the served
/// snapshot, and every generation stays differentially correct.
#[test]
fn sharded_engines_stay_correct_across_three_delta_generations() {
    for n in [2usize, 3, 7] {
        let mut db = seed_db();
        let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(n));
        db.clear_mutation_log();
        verify_sharded_engine(&db, &engine, n);

        for generation in 1..=3u64 {
            let g = generation as i64;
            db.insert_into("R", t2(20 + g, g % 11));
            db.insert_into("S", t2(g % 11, 30 + g));
            let victim = db.get("R").unwrap().tuples()[0].clone();
            assert_eq!(db.delete_from("R", &victim), 1);
            let snap = engine.advance_delta(&mut db);
            assert_eq!(snap.generation(), generation, "{n} shards");
            assert_eq!(engine.shard_count(), n, "shard count survives advance");
            let sharded = engine.sharded().expect("sharded engine stays sharded");
            assert!(
                Arc::ptr_eq(sharded.base(), &engine.snapshot()),
                "the sharded view shadows the served snapshot"
            );
            verify_sharded_engine(&db, &engine, n);
        }
    }
}

/// The clean-relation carry, pointer-proven at the engine level: a
/// delta that dirties only `R` (with in-domain values, so the cuts
/// carry verbatim) re-partitions `R` alone — `S` and `T` keep their
/// exact per-shard vector `Arc`s across the advance.
#[test]
fn advance_reshards_only_the_dirty_relation() {
    let mut db = seed_db();
    let engine = Engine::with_shards(db.clone().freeze(), ShardSpec::Forced(3));
    db.clear_mutation_log();
    let before = engine.sharded().unwrap();

    db.insert_into("R", t2(1, 3)); // a fresh tuple over already-interned values
    engine.advance_delta(&mut db);
    let after = engine.sharded().unwrap();

    assert_eq!(
        after.bounds(),
        before.bounds(),
        "in-domain delta carries the cuts"
    );
    for clean in ["S", "T"] {
        assert!(
            Arc::ptr_eq(
                before.parts_arc(clean).unwrap(),
                after.parts_arc(clean).unwrap()
            ),
            "{clean} is clean: its shard vector must carry by pointer"
        );
    }
    assert!(
        !Arc::ptr_eq(
            before.parts_arc("R").unwrap(),
            after.parts_arc("R").unwrap()
        ),
        "R is dirty: it must re-partition"
    );
    let dir = after.directory();
    assert_eq!(dir.shards(), 3);
    assert_eq!(
        dir.rows["R"].iter().sum::<usize>(),
        after.base().encoded("R").unwrap().len()
    );
}

/// Mutation scripts through `ShardedSnapshot::freeze_delta` directly
/// (no engine in the loop): after every freeze the per-shard split
/// concatenates to the normalized encoding, relations untouched since
/// the previous freeze carry their shard vectors by pointer whenever
/// the cuts and encodings carried, and a sharded lex build over the
/// chained view still matches the materialized oracle.
fn run_sharded_delta_script(n: usize, ops: &[(u8, i64, i64)]) -> Result<(), String> {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let lex = q.vars(&["x", "y", "z"]);
    let mut db = seed_db();
    let mut sharded = ShardedSnapshot::freeze(&db.clone().freeze(), ShardSpec::Forced(n));
    db.clear_mutation_log();
    let mut dirty: Vec<&str> = Vec::new();

    for &(kind, a, b) in ops {
        match kind % 4 {
            0 => {
                db.insert_into("R", t2(a, b));
                dirty.push("R");
            }
            1 => {
                db.insert_into("S", t2(a, b));
                dirty.push("S");
            }
            2 => {
                let victim = {
                    let tuples = db.get("R").unwrap().tuples();
                    if tuples.is_empty() {
                        continue;
                    }
                    tuples[(a.unsigned_abs() as usize) % tuples.len()].clone()
                };
                if db.delete_from("R", &victim) != 1 {
                    return Err(format!("existing tuple {victim} must delete"));
                }
                dirty.push("R");
            }
            _ => {
                let prev = Arc::clone(&sharded);
                let (next, sh) = prev.freeze_delta(&mut db);
                sharded = sh;
                if !Arc::ptr_eq(sharded.base(), &next) {
                    return Err("freeze_delta must return its own base".into());
                }
                // Shard-content audit: concatenating shards in order
                // reproduces each normalized encoding row-for-row.
                for name in ["R", "S", "T"] {
                    let enc = next.encoded(name).ok_or("relation must encode")?;
                    let mut row = 0usize;
                    for s in 0..n {
                        let part = sharded.part(name, s).ok_or("shard must exist")?;
                        for r in 0..part.len() {
                            for p in 0..enc.arity() {
                                if part.code(r, p) != enc.code(row, p) {
                                    return Err(format!("{name} shard {s} diverged at row {row}"));
                                }
                            }
                            row += 1;
                        }
                    }
                    if row != enc.len() {
                        return Err(format!("{name} shards cover {row}/{} rows", enc.len()));
                    }
                    // The carry contract, both directions observable:
                    // same cuts + same encoding Arc ⇒ same shard vector.
                    let carried = sharded.bounds() == prev.bounds()
                        && Arc::ptr_eq(
                            prev.base().encoded_arc(name).unwrap(),
                            next.encoded_arc(name).unwrap(),
                        );
                    let shared = Arc::ptr_eq(
                        prev.parts_arc(name).unwrap(),
                        sharded.parts_arc(name).unwrap(),
                    );
                    if carried != shared {
                        return Err(format!(
                            "{name}: carried={carried} but shared={shared} (dirty set {dirty:?})"
                        ));
                    }
                    if shared && dirty.contains(&name) {
                        return Err(format!("{name} was dirtied yet its shards carried"));
                    }
                }
                dirty.clear();

                // Differential build over the chained sharded view.
                let da = LexDirectAccess::build_on_sharded(
                    &q,
                    &sharded,
                    &lex,
                    &no_fds(),
                    BuildBudget::UNLIMITED,
                )
                .map_err(|e| format!("sharded build failed: {e}"))?;
                let oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, &db, &lex).iter().collect();
                if da.len() != oracle.len() as u64 {
                    return Err(format!("len {} vs oracle {}", da.len(), oracle.len()));
                }
                for (k, expect) in oracle.iter().enumerate() {
                    if da.access(k as u64).as_ref() != Some(expect) {
                        return Err(format!("access({k}) diverged from the oracle"));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mutation scripts over chained sharded delta freezes:
    /// content, pointer-carry, and differential build correctness at
    /// every freeze point, across shard counts.
    #[test]
    fn sharded_delta_fuzz_holds_carry_and_oracle_contracts(
        n in 2usize..5,
        ops in proptest::collection::vec((0u8..4, -2i64..16, 0i64..16), 6..32),
    ) {
        run_sharded_delta_script(n, &ops)?;
        // Always end on a freeze so every script checks at least one.
        run_sharded_delta_script(n, &[&ops[..], &[(3, 0, 0)]].concat())?;
    }
}
