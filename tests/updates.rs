//! The differential update-fuzz suite: versioned snapshots under
//! random mutation traffic, checked against a rebuild-from-scratch
//! oracle after every generation.
//!
//! Two families of guarantees are enforced here:
//!
//! * **Correctness under mutation** — after any interleaving of
//!   inserts, deletes, delta freezes and queries, every backend the
//!   engine can route to (native lex/sum direct access, both lazy
//!   selection handles, the materialized fallback) must serve exactly
//!   what a from-scratch rebuild over the current data serves —
//!   including `rank_of_lower_bound` and the windowed/streamed access
//!   surface.
//! * **Incrementality** — `freeze_delta` re-encodes *only* the dirty
//!   relations (proved through the process-wide
//!   [`relation_encode_count`] hook), shares clean encodings by `Arc`,
//!   and the engine carries clean-query plans across generations by
//!   pointer identity while dirty-query plans rebuild.
//!
//! Every test takes the file-local [`guard`] lock: the encode counter
//! is process-wide, and this binary is the one place its deltas are
//! asserted exactly.

use proptest::prelude::*;
use ranked_access::prelude::*;
use ranked_access::rda_db::relation_encode_count;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serialize the tests in this binary (see module docs).
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn t1(a: i64) -> Tuple {
    [Value::int(a)].into_iter().collect()
}

fn t2(a: i64, b: i64) -> Tuple {
    [Value::int(a), Value::int(b)].into_iter().collect()
}

fn no_fds() -> FdSet {
    FdSet::empty()
}

/// Compare one plan against the oracle's answer array on the full
/// direct-access surface: every rank, inverted access, out-of-bounds,
/// windows, pages and resumed streams.
fn check_plan_against(plan: &AccessPlan, oracle: &[Tuple], ctx: &str) {
    assert_eq!(plan.len(), oracle.len() as u64, "{ctx}: answer count");
    for (k, expect) in oracle.iter().enumerate() {
        let k = k as u64;
        assert_eq!(plan.access(k).as_ref(), Some(expect), "{ctx}: access({k})");
        assert_eq!(
            plan.inverted_access(expect),
            Some(k),
            "{ctx}: inverted_access({expect})"
        );
    }
    assert_eq!(plan.access(plan.len()), None, "{ctx}: out of bounds");

    // Windows & pages, including clamped and empty shapes.
    let len = plan.len();
    let ranges = [0..len, 0..len.min(3), len / 2..len + 7, len..len + 3];
    for r in ranges {
        let expect: Vec<Tuple> =
            oracle[(r.start.min(len) as usize)..(r.end.min(len) as usize)].to_vec();
        assert_eq!(plan.access_range(r.clone()), expect, "{ctx}: window {r:?}");
    }
    assert_eq!(
        plan.top_k(2),
        oracle[..oracle.len().min(2)].to_vec(),
        "{ctx}: top_k"
    );
    assert_eq!(
        plan.page(1, 4),
        oracle[1.min(oracle.len())..oracle.len().min(5)].to_vec(),
        "{ctx}: page"
    );

    // Streams, fresh and resumed mid-way.
    let streamed: Vec<Tuple> = plan.stream().collect();
    assert_eq!(streamed, oracle, "{ctx}: full stream");
    let resumed: Vec<Tuple> = plan.stream_from(len / 2).collect();
    assert_eq!(
        resumed,
        oracle[(len / 2) as usize..],
        "{ctx}: resumed stream"
    );
}

/// Check the currently served generation of `engine` against
/// rebuild-from-scratch oracles on every routable backend.
fn verify_generation(db: &Database, engine: &Engine) {
    let snap = engine.snapshot();
    assert_eq!(
        snap.database(),
        db,
        "the served snapshot must reflect the source of truth"
    );

    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qcov = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let qproj = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();

    // Native lex direct access vs materialize-and-sort rebuild.
    let lex_oracle = MaterializedAccess::by_lex(&q, db, &q.vars(&["x", "y", "z"]));
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::LexDirectAccess);
    let oracle: Vec<Tuple> = lex_oracle.iter().collect();
    check_plan_against(&plan, &oracle, "lex-da");

    // rank_of_lower_bound (Remark 3) on answers and a probe grid, vs
    // counting the strictly-smaller answers by hand. The plan is `Lex`
    // on a plain engine and `ShardedLex` under `RDA_FORCE_SHARDS`; both
    // expose the same probe API.
    let lower_bound = |probe: &Tuple| match plan.answers() {
        RankedAnswers::Lex(da) => da.rank_of_lower_bound(probe),
        RankedAnswers::ShardedLex(da) => da.rank_of_lower_bound(probe),
        _ => panic!("expected the native lex backend"),
    };
    let probes = oracle
        .iter()
        .cloned()
        .chain((-1..7).flat_map(|a| (0..7).map(move |b| t2(a, b).concat(&t1((a + b) % 5)))));
    for probe in probes {
        let expect = oracle.iter().filter(|t| **t < probe).count() as u64;
        assert_eq!(lower_bound(&probe), Some(expect), "lower bound of {probe}");
    }

    // Lazy lex selection on the trio-blocked order <x, z, y>.
    let trio = q.vars(&["x", "z", "y"]);
    let trio_oracle: Vec<Tuple> = MaterializedAccess::by_lex(&q, db, &trio).iter().collect();
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionLex);
    check_plan_against(&plan, &trio_oracle, "selection-lex");

    // Lazy sum selection (fmh = 2) with identity weights.
    let by_weight = |v: VarId, val: &Value| {
        let _ = v;
        val.as_int().map_or(0.0, |i| i as f64)
    };
    let sum_oracle: Vec<Tuple> = MaterializedAccess::by_sum(&q, db, by_weight)
        .iter()
        .collect();
    let plan = engine
        .prepare(&q, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    check_plan_against(&plan, &sum_oracle, "selection-sum");

    // Native sum direct access (one atom covers the free variables).
    let cov_oracle: Vec<Tuple> = MaterializedAccess::by_sum(&qcov, db, by_weight)
        .iter()
        .collect();
    let plan = engine
        .prepare(&qcov, OrderSpec::sum_by_value(), &no_fds(), Policy::Reject)
        .unwrap();
    assert_eq!(plan.backend(), Backend::SumDirectAccess);
    check_plan_against(&plan, &cov_oracle, "sum-da");

    // The materialized fallback on a non-free-connex projection.
    let proj_oracle: Vec<Tuple> = MaterializedAccess::by_lex(&qproj, db, &qproj.vars(&["x", "z"]))
        .iter()
        .collect();
    let plan = engine
        .prepare(
            &qproj,
            OrderSpec::lex(&qproj, &["x", "z"]),
            &no_fds(),
            Policy::Materialize,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::Materialized);
    check_plan_against(&plan, &proj_oracle, "materialized");
}

/// Run one mutation script: ops are (kind, a, b) with kind selecting
/// insert/delete/freeze. Every freeze asserts the exact encode count
/// (== dirty relations) and re-verifies every backend.
fn run_mutation_script(ops: &[(u8, i64, i64)]) -> Result<(), String> {
    let mut db = Database::new()
        .with_i64_rows("R", 2, vec![vec![0, 1], vec![1, 2]])
        .with_i64_rows("S", 2, vec![vec![1, 3], vec![2, 0]])
        .with_i64_rows("T", 1, vec![vec![0]]); // never mutated
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();
    verify_generation(&db, &engine);

    let mut dirty_since_freeze = false;
    for &(kind, a, b) in ops {
        match kind % 5 {
            0 => {
                db.insert_into("R", t2(a, b));
                dirty_since_freeze = true;
            }
            1 => {
                db.insert_into("S", t2(a, b));
                dirty_since_freeze = true;
            }
            k @ (2 | 3) => {
                // Delete an *existing* tuple (by index) so deletions
                // actually bite instead of mostly missing.
                let name = if k == 2 { "R" } else { "S" };
                let victim = {
                    let tuples = db.get(name).unwrap().tuples();
                    if tuples.is_empty() {
                        continue;
                    }
                    tuples[(a.unsigned_abs() as usize) % tuples.len()].clone()
                };
                let removed = db.delete_from(name, &victim);
                if removed == 0 {
                    return Err(format!("existing tuple {victim} must delete"));
                }
                dirty_since_freeze = true;
            }
            _ => {
                freeze_and_verify(&mut db, &engine)?;
                dirty_since_freeze = false;
            }
        }
    }
    if dirty_since_freeze {
        freeze_and_verify(&mut db, &engine)?;
    }
    // T was never touched: its version — and its very encoding — date
    // from generation 0.
    let snap = engine.snapshot();
    if snap.relation_version("T") != Some(0) {
        return Err("untouched relation must keep version 0".to_string());
    }
    Ok(())
}

fn freeze_and_verify(db: &mut Database, engine: &Engine) -> Result<(), String> {
    let dirty = db.mutation_log().dirty_count() as u64;
    let gen_before = engine.generation();
    let before = relation_encode_count();
    let snap = engine.snapshot().freeze_delta(db);
    let encoded = relation_encode_count() - before;
    if encoded != dirty {
        return Err(format!(
            "freeze_delta encoded {encoded} relations, but only {dirty} were dirty"
        ));
    }
    engine.advance(Arc::clone(&snap));
    if engine.generation() != gen_before + 1 {
        return Err("advance must serve the next generation".to_string());
    }
    verify_generation(db, engine);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: random interleavings of inserts, deletes,
    /// delta freezes and queries are indistinguishable — on every
    /// backend, over every generation — from rebuilding from scratch.
    #[test]
    fn update_fuzz_matches_rebuild_oracle(
        ops in proptest::collection::vec((0u8..5, -2i64..7, 0i64..7), 8..48),
    ) {
        let _g = guard();
        run_mutation_script(&ops)?;
    }
}

/// The acceptance-criterion workload, pinned deterministically: eight
/// relations, one dirtied — `freeze_delta` must re-encode exactly one
/// relation, `Arc`-share the other seven, and the engine must carry
/// the seven clean plans by pointer identity while the dirty one
/// rebuilds.
#[test]
fn one_dirty_of_eight_shares_seven_and_carries_their_plans() {
    let _g = guard();
    let mut db = Database::new();
    for i in 0..8 {
        db.add(Relation::from_tuples(
            format!("R{i}"),
            2,
            (0..20i64)
                .map(|j| t2(j * 2, (j * 7 + i as i64) % 19))
                .collect(),
        ));
    }
    let queries: Vec<Cq> = (0..8)
        .map(|i| parse(&format!("Q{i}(x, y) :- R{i}(x, y)")).unwrap())
        .collect();
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();
    let snap0 = engine.snapshot();
    let plans: Vec<Arc<AccessPlan>> = queries
        .iter()
        .map(|q| {
            engine
                .prepare(q, OrderSpec::lex(q, &["x", "y"]), &no_fds(), Policy::Reject)
                .unwrap()
        })
        .collect();

    // Dirty exactly R0 — with an interior value, so even the rebase
    // path must leave the clean seven un-encoded.
    db.insert_into("R0", t2(1, 1));
    let before = relation_encode_count();
    let snap1 = engine.snapshot().freeze_delta(&mut db);
    assert_eq!(
        relation_encode_count() - before,
        1,
        "freeze_delta must re-encode exactly the one dirty relation"
    );
    for i in 1..8 {
        let name = format!("R{i}");
        assert_eq!(snap1.relation_version(&name), Some(0), "{name} stays clean");
    }
    assert_eq!(snap1.relation_version("R0"), Some(1));

    let carried = engine.advance(Arc::clone(&snap1));
    assert_eq!(carried, 7, "the seven clean plans carry forward");
    for (i, q) in queries.iter().enumerate() {
        let again = engine
            .prepare(q, OrderSpec::lex(q, &["x", "y"]), &no_fds(), Policy::Reject)
            .unwrap();
        if i == 0 {
            assert!(!Arc::ptr_eq(&plans[0], &again), "dirty plan rebuilds");
            assert_eq!(again.len(), 21);
        } else {
            assert!(Arc::ptr_eq(&plans[i], &again), "clean plan {i} is carried");
        }
    }
    // In-flight readers of generation 0 still see generation 0.
    assert_eq!(plans[0].len(), 20);
    drop(snap0);
}

/// A relation emptied by deletes is a legitimate generation: plans see
/// zero answers, and a later re-fill brings them back.
#[test]
fn relation_emptied_by_deletes_then_refrozen() {
    let _g = guard();
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let mut db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 5], vec![6, 2]])
        .with_i64_rows("S", 2, vec![vec![5, 3], vec![2, 5]]);
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();

    for t in [t2(1, 5), t2(6, 2)] {
        assert_eq!(db.delete_from("R", &t), 1);
    }
    assert!(db.get("R").unwrap().is_empty());
    engine.advance_delta(&mut db);
    verify_generation(&db, &engine);
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert!(plan.is_empty());
    assert_eq!(plan.top_k(3), Vec::<Tuple>::new());
    let mut stream = plan.stream();
    assert_eq!(stream.next(), None);

    // Refill and refreeze: answers return, the old empty generation is
    // still what the old plan serves.
    db.insert_into("R", t2(1, 5));
    engine.advance_delta(&mut db);
    verify_generation(&db, &engine);
    let refilled = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(refilled.len(), 1);
    assert!(plan.is_empty(), "generation pinning holds");
}

/// The empty-delta contract: a freeze with no recorded mutations shares
/// *everything* by `Arc` under a fresh generation, and the engine
/// carries every cached plan.
#[test]
fn empty_mutation_log_delta_is_a_shared_generation() {
    let _g = guard();
    let q = parse("Q(x, y) :- R(x, y)").unwrap();
    let mut db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2], vec![3, 4]]);
    let engine = Engine::new(db.clone().freeze());
    db.clear_mutation_log();
    let plan = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();

    let snap0 = engine.snapshot();
    let before = relation_encode_count();
    let snap1 = snap0.freeze_delta(&mut db);
    assert_eq!(relation_encode_count(), before, "nothing to encode");
    assert_eq!(snap1.generation(), snap0.generation() + 1);
    assert!(Arc::ptr_eq(snap0.dict_arc(), snap1.dict_arc()));
    assert!(Arc::ptr_eq(
        snap0.encoded_arc("R").unwrap(),
        snap1.encoded_arc("R").unwrap()
    ));

    assert_eq!(engine.advance(snap1), 1);
    let again = engine
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y"]),
            &no_fds(),
            Policy::Reject,
        )
        .unwrap();
    assert!(Arc::ptr_eq(&plan, &again));
}

/// Monotone dictionary extension, observed end to end: values past the
/// top of the domain append codes (old encodings shared verbatim);
/// interior values rebase clean encodings by a gather — but never
/// re-encode them.
#[test]
fn dictionary_extension_paths_share_or_gather_clean_encodings() {
    let _g = guard();
    let mut db = Database::new()
        .with_i64_rows("R", 2, vec![vec![10, 20]])
        .with_i64_rows("S", 2, vec![vec![20, 30]]);
    let snap0 = Database::freeze(db.clone());
    db.clear_mutation_log();

    // Append path: 40 > max(domain).
    db.insert_into("R", t2(40, 40));
    let snap1 = snap0.freeze_delta(&mut db);
    assert!(Arc::ptr_eq(
        snap0.encoded_arc("S").unwrap(),
        snap1.encoded_arc("S").unwrap()
    ));
    for v in [10i64, 20, 30] {
        assert_eq!(
            snap1.dict().code(&Value::int(v)),
            snap0.dict().code(&Value::int(v)),
            "old codes stay stable on append"
        );
    }

    // Rebase path: 15 lands inside the domain.
    db.insert_into("R", t2(15, 15));
    let before = relation_encode_count();
    let snap2 = snap1.freeze_delta(&mut db);
    assert_eq!(relation_encode_count() - before, 1, "only R encodes");
    assert!(!Arc::ptr_eq(
        snap1.encoded_arc("S").unwrap(),
        snap2.encoded_arc("S").unwrap()
    ));
    // The gathered encoding decodes to the same content, in the same
    // order, under the rebased dictionary.
    let s = snap2.encoded("S").unwrap();
    let rows: Vec<Tuple> = (0..s.len())
        .map(|i| s.decode_row(i, snap2.dict()))
        .collect();
    assert_eq!(rows, vec![t2(20, 30)]);
    assert_eq!(snap2.relation_version("S"), Some(0), "content unchanged");
}
