//! The encode-once contract of the snapshot-centric serving core,
//! enforced by the process-wide relation-encode counter: freezing a
//! database encodes each relation exactly once, and building *every*
//! backend the engine can route to — native lex/sum direct access,
//! both lazy selection handles, the materialized fallback — from that
//! snapshot performs **zero** further relation encodings. The clone
//! and ownership hand-offs of the pre-snapshot pipeline are gone.
//!
//! Everything lives in one `#[test]` so no concurrent test in this
//! binary can disturb the global counter (this integration-test binary
//! contains nothing else).

use ranked_access::prelude::*;
use ranked_access::rda_db::relation_encode_count;

fn encodes_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = relation_encode_count();
    let out = f();
    (out, relation_encode_count() - before)
}

#[test]
fn freezing_encodes_once_and_builders_encode_nothing() {
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let qcov = parse("Q(x, y) :- R(x, y), S(y, z)").unwrap();
    let qproj = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let db = Database::new()
        .with_i64_rows(
            "R",
            2,
            (0..200i64)
                .map(|i| vec![i % 23, i % 17])
                .collect::<Vec<_>>(),
        )
        .with_i64_rows(
            "S",
            2,
            (0..200i64)
                .map(|i| vec![i % 17, i % 29])
                .collect::<Vec<_>>(),
        );

    // Freeze: exactly one encoding per relation.
    let (snap, n) = encodes_during(|| db.freeze());
    assert_eq!(
        n,
        snap.relation_count() as u64,
        "freeze encodes each relation exactly once"
    );

    // Every backend builds from the snapshot without re-encoding —
    // including a second engine over the same snapshot.
    let engine = Engine::new(std::sync::Arc::clone(&snap));
    let (_, n) = encodes_during(|| {
        // Native lexicographic direct access (full + partial orders).
        let lex = engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &["x", "y", "z"]),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(lex.backend(), Backend::LexDirectAccess);
        let partial = engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &["z", "y"]),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(partial.backend(), Backend::LexDirectAccess);
        // Native sum direct access.
        let sum = engine
            .prepare(
                &qcov,
                OrderSpec::sum_by_value(),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(sum.backend(), Backend::SumDirectAccess);
        // Lazy selection handles (lex + sum), exercised end to end.
        let sel_lex = engine
            .prepare(
                &q,
                OrderSpec::lex(&q, &["x", "z", "y"]),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(sel_lex.backend(), Backend::SelectionLex);
        assert!(sel_lex.access(0).is_some());
        let sel_sum = engine
            .prepare(
                &q,
                OrderSpec::sum_by_value(),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(sel_sum.backend(), Backend::SelectionSum);
        assert!(sel_sum.access(0).is_some());
        // Materialized fallback.
        let mat = engine
            .prepare(
                &qproj,
                OrderSpec::lex(&qproj, &["x", "z"]),
                &FdSet::empty(),
                Policy::Materialize,
            )
            .unwrap();
        assert_eq!(mat.backend(), Backend::Materialized);
        // Serve a few answers from each — accesses must not encode
        // either.
        for plan in [&lex, &partial, &sum, &sel_lex, &sel_sum, &mat] {
            for k in 0..plan.len().min(5) {
                let t = plan.access(k).unwrap();
                assert_eq!(plan.inverted_access(&t), Some(k));
            }
        }
    });
    assert_eq!(
        n, 0,
        "building and serving from a snapshot must never re-encode"
    );

    // Direct builders on the snapshot obey the same contract.
    let (_, n) = encodes_during(|| {
        let da = LexDirectAccess::build_on(&q, &snap, &q.vars(&["x", "y", "z"]), &FdSet::empty())
            .unwrap();
        assert!(!da.is_empty());
        let sda =
            SumDirectAccess::build_on(&qcov, &snap, &Weights::identity(), &FdSet::empty()).unwrap();
        assert!(!sda.is_empty());
    });
    assert_eq!(n, 0, "build_on must not re-encode");

    // FD builds run the whole extension pipeline in code space too.
    let qfd = parse("Q(x, z) :- R2(x, y), S2(y, z)").unwrap();
    let fds = FdSet::parse(&qfd, &[("S2", "y", "z")]);
    let db2 = Database::new()
        .with_i64_rows(
            "R2",
            2,
            (0..60i64).map(|i| vec![i, i % 9]).collect::<Vec<_>>(),
        )
        .with_i64_rows(
            "S2",
            2,
            (0..9i64).map(|y| vec![y, (y * 5) % 7]).collect::<Vec<_>>(),
        );
    let (snap2, n) = encodes_during(|| db2.freeze());
    assert_eq!(n, 2);
    let (_, n) = encodes_during(|| {
        let da = LexDirectAccess::build_on(&qfd, &snap2, &qfd.vars(&["x", "z"]), &fds).unwrap();
        assert!(!da.is_empty());
        let sda = SumDirectAccess::build_on(&qfd, &snap2, &Weights::identity(), &fds).unwrap();
        assert!(!sda.is_empty());
    });
    assert_eq!(n, 0, "FD-extended builds must stay in code space");

    // The deprecated one-shot convenience (`build`) is the one path
    // that still freezes per call — one fresh encoding pass, bounded by
    // the relation count, never more.
    let (_, n) = encodes_during(|| {
        LexDirectAccess::build(
            &q,
            snap.database(),
            &q.vars(&["x", "y", "z"]),
            &FdSet::empty(),
        )
        .unwrap()
    });
    assert_eq!(n, snap.relation_count() as u64);
}
