//! End-to-end reproductions of the paper's worked examples through the
//! public API: Figure 2 (orderings), Figures 3–5 (Examples 3.5–3.7),
//! Example 4.2, Example 6.2, Example 7.4.

use ranked_access::prelude::*;

fn tup(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::int(v)).collect()
}

fn stup(vals: &[&str]) -> Tuple {
    vals.iter().map(|&v| Value::str(v)).collect()
}

/// Figure 2a's database.
fn fig2_db() -> Database {
    Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
        .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]])
}

fn two_path() -> Cq {
    parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap()
}

/// Figure 2b: the answers ordered by LEX ⟨x, y, z⟩.
#[test]
fn figure_2b() {
    let q = two_path();
    let da =
        LexDirectAccess::build(&q, &fig2_db(), &q.vars(&["x", "y", "z"]), &FdSet::empty()).unwrap();
    let got: Vec<Tuple> = da.iter().collect();
    let expect: Vec<Tuple> = [[1, 2, 5], [1, 5, 3], [1, 5, 4], [1, 5, 6], [6, 2, 5]]
        .iter()
        .map(|r| tup(r))
        .collect();
    assert_eq!(got, expect);
}

/// Figure 2c: LEX ⟨x, z, y⟩ — direct access is intractable, so the
/// engine serves the listed order through the selection backend.
#[test]
fn figure_2c() {
    let q = two_path();
    let db = fig2_db();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionLex);
    assert!(matches!(
        plan.explain().verdict().reason(),
        Some(Reason::DisruptiveTrio(..))
    ));
    // Rows of Figure 2c as (x, y, z) tuples.
    let expect: Vec<Tuple> = [[1, 5, 3], [1, 5, 4], [1, 2, 5], [1, 5, 6], [6, 2, 5]]
        .iter()
        .map(|r| tup(r))
        .collect();
    for (k, e) in expect.iter().enumerate() {
        assert_eq!(plan.access(k as u64).as_ref(), Some(e), "row #{}", k + 1);
    }
    assert_eq!(plan.len(), 5);
}

/// Figure 2d: the SUM ordering's weight column (8, 9, 10, 12, 13 for
/// Figure 2a's data; the figure's 9/9 tie comes from a variant with
/// (1,2,6) — our data has (1,5,6) giving 12).
#[test]
fn figure_2d() {
    let q = two_path();
    let db = fig2_db();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    let RankedAnswers::SelectionSum(handle) = plan.answers() else {
        panic!("routed to {}", plan.backend());
    };
    let weights: Vec<f64> = (0..5)
        .map(|k| handle.access_weighted(k).unwrap().0 .0)
        .collect();
    assert_eq!(weights, vec![8.0, 9.0, 10.0, 12.0, 13.0]);
    // The median answer weighs 10 (it is (1,5,4)).
    let (w, t) = handle.access_weighted(2).unwrap();
    assert_eq!(w, TotalF64(10.0));
    assert_eq!(t, tup(&[1, 5, 4]));
}

/// Examples 3.5–3.7 / Figures 3–5: the cartesian-product query with the
/// interleaved order, Figure 4's database, access(12) = (a2, b1, c3, d2).
#[test]
fn example_3_5_through_3_7() {
    let q = parse("Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)").unwrap();
    let db = Database::new()
        .with(Relation::from_tuples(
            "R",
            2,
            vec![
                stup(&["a1", "c1"]),
                stup(&["a1", "c2"]),
                stup(&["a2", "c2"]),
                stup(&["a2", "c3"]),
            ],
        ))
        .with(Relation::from_tuples(
            "S",
            2,
            vec![
                stup(&["b1", "d1"]),
                stup(&["b1", "d2"]),
                stup(&["b1", "d3"]),
                stup(&["b2", "d4"]),
            ],
        ));
    let da = LexDirectAccess::build(&q, &db, &q.vars(&["v1", "v2", "v3", "v4"]), &FdSet::empty())
        .unwrap();
    // Figure 4's weights: R' totals 16 answers.
    assert_eq!(da.len(), 16);
    // Example 3.7: "answer number 12 (the 13th answer) is (a2, b1, c3, d2)".
    assert_eq!(da.access(12).unwrap(), stup(&["a2", "b1", "c3", "d2"]));
    // And the first answer combines the minima.
    assert_eq!(da.access(0).unwrap(), stup(&["a1", "b1", "c1", "d1"]));
}

/// Example 4.2: tractability of partial orders on the 2-path.
#[test]
fn example_4_2() {
    let db = fig2_db();
    // free = {x, z}: not free-connex, intractable.
    let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    assert!(LexDirectAccess::build(&qp, &db, &qp.vars(&["x", "z"]), &FdSet::empty()).is_err());
    // full query, L = <x, z>: not L-connex.
    let q = two_path();
    assert!(LexDirectAccess::build(&q, &db, &q.vars(&["x", "z"]), &FdSet::empty()).is_err());
    // L = <x, z, y>: disruptive trio.
    assert!(LexDirectAccess::build(&q, &db, &q.vars(&["x", "z", "y"]), &FdSet::empty()).is_err());
    // L = <x, y, z> and L = <z, y>: tractable.
    assert!(LexDirectAccess::build(&q, &db, &q.vars(&["x", "y", "z"]), &FdSet::empty()).is_ok());
    assert!(LexDirectAccess::build(&q, &db, &q.vars(&["z", "y"]), &FdSet::empty()).is_ok());
}

/// Example 6.2: the engine serves the trio order and the non-connex
/// prefix through selection, but refuses once y is projected away.
#[test]
fn example_6_2() {
    let db = fig2_db();
    let q = two_path();
    for lex in [vec!["x", "z", "y"], vec!["x", "z"]] {
        let plan = Engine::new(db.clone().freeze())
            .prepare(
                &q,
                OrderSpec::lex(&q, &lex),
                &FdSet::empty(),
                Policy::Reject,
            )
            .unwrap();
        assert_eq!(plan.backend(), Backend::SelectionLex, "{lex:?}");
        assert!(plan.access(0).is_some());
    }
    let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let err = Engine::new(db.clone().freeze())
        .prepare(
            &qp,
            OrderSpec::lex(&qp, &["x", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap_err();
    assert!(matches!(err, PlanError::Intractable { .. }));
    assert!(matches!(
        err.verdict().and_then(Verdict::reason),
        Some(Reason::NotFreeConnex { .. })
    ));
}

/// Example 7.4: SUM across the fmh boundary, with data, through the
/// engine's routing.
#[test]
fn example_7_4() {
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 2], vec![3, 4]])
        .with_i64_rows("S", 2, vec![vec![2, 5], vec![4, 6]])
        .with_i64_rows("T", 2, vec![vec![5, 7], vec![6, 8]]);
    // Q2: a single atom covers the head — native SUM direct access.
    let q2 = parse("Q(x, y) :- R(x, y)").unwrap();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q2,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SumDirectAccess);
    // Q'3 (u projected away): fmh = 2 — selection backend.
    let q3p = parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q3p,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    assert_eq!(plan.backend(), Backend::SelectionSum);
    assert_eq!(plan.access(0), Some(tup(&[1, 2, 5]))); // weight 8
                                                       // Q3 full: fmh = 3 — outside both tractable regions.
    let q3 = parse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)").unwrap();
    let err = Engine::new(db.clone().freeze())
        .prepare(
            &q3,
            OrderSpec::sum_by_value(),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap_err();
    assert!(matches!(err, PlanError::Intractable { .. }));
}

/// The intro's pandemic example: Visits ⋈ Cases with the tractable order
/// (#cases, city, age) — quantile queries via direct access.
#[test]
fn pandemic_visits_cases() {
    let q = parse(
        "Q(person, age, city, date, cases) :- Visits(person, age, city), Cases(city, date, cases)",
    )
    .unwrap();
    let db = Database::new()
        .with(Relation::from_tuples(
            "Visits",
            3,
            vec![
                vec![Value::str("anna"), Value::int(72), Value::str("boston")]
                    .into_iter()
                    .collect(),
                vec![Value::str("bob"), Value::int(33), Value::str("boston")]
                    .into_iter()
                    .collect(),
                vec![Value::str("carl"), Value::int(51), Value::str("nyc")]
                    .into_iter()
                    .collect(),
            ],
        ))
        .with(Relation::from_tuples(
            "Cases",
            3,
            vec![
                vec![Value::str("boston"), Value::str("12/07"), Value::int(179)]
                    .into_iter()
                    .collect(),
                vec![Value::str("boston"), Value::str("12/08"), Value::int(121)]
                    .into_iter()
                    .collect(),
                vec![Value::str("nyc"), Value::str("12/07"), Value::int(998)]
                    .into_iter()
                    .collect(),
            ],
        ));
    // (#cases, age, ...) has a disruptive trio — rejected.
    let bad = q.vars(&["cases", "age", "city", "date", "person"]);
    assert!(LexDirectAccess::build(&q, &db, &bad, &FdSet::empty()).is_err());
    // (#cases, city, age) is tractable.
    let good = q.vars(&["cases", "city", "age"]);
    let da = LexDirectAccess::build(&q, &db, &good, &FdSet::empty()).unwrap();
    assert_eq!(da.len(), 5); // 2 boston people × 2 dates + 1 nyc person
                             // The smallest #cases answer is Bob on 12/08 (121 cases, age 33 < 72).
    let first = da.access(0).unwrap();
    assert_eq!(first.values()[0], Value::str("bob"));
    assert_eq!(first.values()[4], Value::int(121));
    // The largest is Carl in NYC.
    let last = da.access(da.len() - 1).unwrap();
    assert_eq!(last.values()[0], Value::str("carl"));
}

/// Section 1's FD claim: ordering Visits ⋈ Cases by (#cases, age) becomes
/// tractable when each city reports once (Cases: city → date, #cases).
#[test]
fn pandemic_fd_rescue() {
    let q = parse(
        "Q(person, age, city, date, cases) :- Visits(person, age, city), Cases(city, date, cases)",
    )
    .unwrap();
    // Without FDs, (#cases, age) is not L-connex: rejected.
    let lex = q.vars(&["cases", "age"]);
    let v = classify(&q, &FdSet::empty(), &Problem::DirectAccessLex(lex.clone()));
    assert!(!v.is_tractable());
    // With city → cases and city → date (key city in Cases), tractable.
    let fds = FdSet::parse(&q, &[("Cases", "city", "cases"), ("Cases", "city", "date")]);
    let v = classify(&q, &fds, &Problem::DirectAccessLex(lex.clone()));
    assert!(v.is_tractable(), "{v:?}");
    // And it actually runs end to end.
    let db = Database::new()
        .with(Relation::from_tuples(
            "Visits",
            3,
            vec![
                vec![Value::str("anna"), Value::int(72), Value::str("boston")]
                    .into_iter()
                    .collect(),
                vec![Value::str("carl"), Value::int(51), Value::str("nyc")]
                    .into_iter()
                    .collect(),
            ],
        ))
        .with(Relation::from_tuples(
            "Cases",
            3,
            vec![
                vec![Value::str("boston"), Value::str("12/07"), Value::int(179)]
                    .into_iter()
                    .collect(),
                vec![Value::str("nyc"), Value::str("12/07"), Value::int(998)]
                    .into_iter()
                    .collect(),
            ],
        ));
    let da = LexDirectAccess::build(&q, &db, &lex, &fds).unwrap();
    assert_eq!(da.len(), 2);
    assert_eq!(da.access(0).unwrap().values()[0], Value::str("anna"));
    assert_eq!(da.access(1).unwrap().values()[0], Value::str("carl"));
}
