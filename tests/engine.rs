//! The Engine/AccessPlan facade, property-tested end to end: for every
//! backend reachable through `Engine::prepare` — native lex/sum direct
//! access, both lazy selection handles, the materialize fallback, and
//! the ranked-enumeration fallback — `access(k)` / `inverted_access`
//! must round-trip, bounds must be respected, and routing must agree
//! with the classifier.

use proptest::prelude::*;
use ranked_access::prelude::*;

/// Fill every relation a query mentions with random rows over a small
/// domain (forcing join hits).
fn random_db(q: &Cq, rows: usize, domain: i64, seed: u64) -> Database {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::HashSet::new();
    for atom in q.atoms() {
        if !seen.insert(atom.relation.clone()) {
            continue; // self-join: one relation per symbol
        }
        let arity = atom.terms.len();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| Value::int(rng.random_range(0..domain)))
                    .collect()
            })
            .collect();
        db.add(Relation::from_tuples(&atom.relation, arity, tuples));
    }
    db
}

/// One scenario per backend: (query, order factory, policy, expected
/// backend). Spans all six `Backend` variants.
fn backend_catalog() -> Vec<(&'static str, Vec<&'static str>, bool, Policy, Backend)> {
    // (query, lex order or empty-for-sum, is_sum, policy, backend)
    vec![
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec!["x", "y", "z"],
            false,
            Policy::Reject,
            Backend::LexDirectAccess,
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec!["x", "z", "y"],
            false,
            Policy::Reject,
            Backend::SelectionLex,
        ),
        (
            "Q(x, y) :- R(x, y), S(y, z)",
            vec![],
            true,
            Policy::Reject,
            Backend::SumDirectAccess,
        ),
        (
            "Q(x, y, z) :- R(x, y), S(y, z)",
            vec![],
            true,
            Policy::Reject,
            Backend::SelectionSum,
        ),
        (
            "Q(x, z) :- R(x, y), S(y, z)",
            vec!["x", "z"],
            false,
            Policy::Materialize,
            Backend::Materialized,
        ),
        (
            "Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
            vec![],
            true,
            Policy::RankedEnum,
            Backend::RankedEnum,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `access(k)` → `inverted_access` round-trips to `k` for every
    /// backend behind the `DirectAccess` trait, and out-of-bound /
    /// not-an-answer probes are rejected.
    #[test]
    fn access_inverted_access_round_trip(seed in 0u64..1_000_000, rows in 1usize..20, domain in 1i64..6) {
        for (src, lex, is_sum, policy, backend) in backend_catalog() {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let spec = if is_sum {
                OrderSpec::sum_by_value()
            } else {
                OrderSpec::lex(&q, &lex)
            };
            let plan = Engine::new(db.clone().freeze()).prepare(&q, spec, &FdSet::empty(), policy).unwrap();
            prop_assert_eq!(plan.backend(), backend, "{}", src);

            let n = plan.len();
            prop_assert_eq!(n == 0, plan.is_empty());
            for k in 0..n {
                let t = plan.access(k).unwrap();
                prop_assert_eq!(
                    plan.inverted_access(&t),
                    Some(k),
                    "backend {} on {} k={}", backend, src, k
                );
            }
            // Out-of-bound access is None.
            prop_assert_eq!(plan.access(n), None, "backend {} on {}", backend, src);
            // A tuple outside every domain is not an answer.
            let absent: Tuple = q.free().iter().map(|_| Value::int(domain + 99)).collect();
            if !q.free().is_empty() {
                prop_assert_eq!(plan.inverted_access(&absent), None, "backend {}", backend);
            }
            // iter() agrees with repeated access and is sorted per the
            // backend's order (spot-check adjacent pairs through the
            // plan itself).
            let via_iter: Vec<Tuple> = plan.iter().collect();
            let via_access: Vec<Tuple> = (0..n).map(|k| plan.access(k).unwrap()).collect();
            prop_assert_eq!(&via_iter, &via_access, "backend {}", backend);
            // range() is the matching slice.
            if n >= 2 {
                prop_assert_eq!(
                    plan.range(1, n),
                    via_access[1..].to_vec(),
                    "backend {}", backend
                );
            }
        }
    }

    /// All backends agree with the materialize-and-sort oracle on the
    /// *answer set* (orders differ; sets must not).
    #[test]
    fn every_backend_serves_exactly_the_answer_set(seed in 0u64..1_000_000, rows in 1usize..15, domain in 1i64..5) {
        for (src, lex, is_sum, policy, _) in backend_catalog() {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, domain, seed);
            let spec = if is_sum {
                OrderSpec::sum_by_value()
            } else {
                OrderSpec::lex(&q, &lex)
            };
            let plan = Engine::new(db.clone().freeze()).prepare(&q, spec, &FdSet::empty(), policy).unwrap();
            let mut got: Vec<Tuple> = plan.iter().collect();
            got.sort();
            got.dedup();
            let expect = all_answers(&q, &db);
            prop_assert_eq!(got, expect, "{}", src);
        }
    }

    /// Routing invariant on random instances: `Engine::prepare` with
    /// `Policy::Reject` succeeds exactly when the classifier puts the
    /// pair inside a tractable region, and native backends appear
    /// exactly on direct-access-tractable orders.
    #[test]
    fn routing_agrees_with_classifier(seed in 0u64..1_000_000, rows in 1usize..10) {
        let catalog = [
            ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "y", "z"]),
            ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z", "y"]),
            ("Q(x, y, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
            ("Q(x, z) :- R(x, y), S(y, z)", vec!["x", "z"]),
            ("Q(x, y) :- R(x, y), S(y, z)", vec!["x", "y"]),
            ("Q(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)", vec!["v1", "v2", "v3", "v4"]),
            ("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", vec!["x", "y", "z"]),
        ];
        for (src, lex) in catalog {
            let q = parse(src).unwrap();
            let db = random_db(&q, rows, 4, seed);
            let l = q.vars(&lex);
            let da_v = classify(&q, &FdSet::empty(), &Problem::DirectAccessLex(l.clone()));
            let sel_v = classify(&q, &FdSet::empty(), &Problem::SelectionLex(l.clone()));
            match Engine::new(db.clone().freeze()).prepare(&q, OrderSpec::Lex(l), &FdSet::empty(), Policy::Reject) {
                Ok(plan) => {
                    prop_assert!(da_v.is_tractable() || sel_v.is_tractable(), "{}", src);
                    prop_assert_eq!(
                        plan.backend() == Backend::LexDirectAccess,
                        da_v.is_tractable(),
                        "{}", src
                    );
                    prop_assert_eq!(plan.explain().verdict(), &da_v, "{}", src);
                }
                Err(e) => {
                    prop_assert!(!da_v.is_tractable() && !sel_v.is_tractable(), "{}", src);
                    prop_assert!(
                        matches!(e, PlanError::Intractable { .. }),
                        "{} -> {:?}", src, e
                    );
                }
            }
        }
    }

    /// The selection-backed lex handle must produce exactly the same
    /// sequence as the native structure does on a tractable order that
    /// completes to the same internal order (cross-backend agreement on
    /// the shared prefix semantics).
    #[test]
    fn selection_handle_orders_by_requested_prefix(seed in 0u64..1_000_000, rows in 1usize..15) {
        let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = random_db(&q, rows, 4, seed);
        let plan = Engine::new(db.clone().freeze()).prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
        prop_assert_eq!(plan.backend(), Backend::SelectionLex);
        // Answers must be non-decreasing on the requested (x, z, y) key.
        let answers: Vec<Tuple> = plan.iter().collect();
        for w in answers.windows(2) {
            let ka = (w[0][0].clone(), w[0][2].clone(), w[0][1].clone());
            let kb = (w[1][0].clone(), w[1][2].clone(), w[1][1].clone());
            prop_assert!(ka <= kb, "{} !<= {} on (x, z, y)", w[0], w[1]);
        }
        // And the set matches the oracle.
        let mut got = answers.clone();
        got.sort();
        prop_assert_eq!(got, all_answers(&q, &db));
    }
}

/// The explain report names verdict, witness, and backend for a
/// tractable, a selection-only, and a fallback query (the acceptance
/// scenario of the facade).
#[test]
fn explain_covers_all_three_regimes() {
    let db = Database::new()
        .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
        .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);

    // Tractable: native backend, no witness.
    let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "y", "z"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    let report = plan.explain().to_string();
    assert!(report.contains("tractable"), "{report}");
    assert!(report.contains("lex-direct-access"), "{report}");
    assert!(plan.explain().witness().is_none());

    // Selection-only: disruptive-trio witness, selection backend.
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &q,
            OrderSpec::lex(&q, &["x", "z", "y"]),
            &FdSet::empty(),
            Policy::Reject,
        )
        .unwrap();
    let report = plan.explain().to_string();
    assert!(report.contains("disruptive trio (x, z, y)"), "{report}");
    assert!(report.contains("selection-lex"), "{report}");

    // Fallback: free-path witness, materialized backend.
    let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
    let plan = Engine::new(db.clone().freeze())
        .prepare(
            &qp,
            OrderSpec::lex(&qp, &["x", "z"]),
            &FdSet::empty(),
            Policy::Materialize,
        )
        .unwrap();
    let report = plan.explain().to_string();
    assert!(report.contains("not free-connex"), "{report}");
    assert!(report.contains("materialized"), "{report}");
    assert!(plan.backend().is_fallback());
}
