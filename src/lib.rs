#![warn(missing_docs)]

//! # ranked-access
//!
//! Direct access to ranked answers of conjunctive queries — a Rust
//! implementation of Carmeli, Tziavelis, Gatterbauer, Kimelfeld,
//! Riedewald, *"Tractable Orders for Direct Access to Ranked Answers of
//! Conjunctive Queries"* (PODS 2021 / arXiv:2012.11965).
//!
//! ## Quickstart
//!
//! ```
//! use ranked_access::prelude::*;
//!
//! // The paper's running example: Q(x, y, z) :- R(x, y), S(y, z).
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
//!
//! // Build a direct-access structure sorted by <x, y, z>:
//! let lex = q.vars(&["x", "y", "z"]);
//! let da = LexDirectAccess::build(&q, &db, &lex, &FdSet::empty()).unwrap();
//! assert_eq!(da.len(), 5);
//! let median = da.access(da.len() / 2).unwrap();   // O(log n)
//! assert_eq!(da.inverted_access(&median), Some(2)); // O(log n)
//!
//! // Orders that are provably intractable are rejected with a witness:
//! let bad = q.vars(&["x", "z", "y"]); // disruptive trio (x, z, y)
//! assert!(LexDirectAccess::build(&q, &db, &bad, &FdSet::empty()).is_err());
//!
//! // ... but single-shot selection still works for them (Theorem 6.1):
//! let third = selection_lex(&q, &db, &bad, 2, &FdSet::empty()).unwrap();
//! assert!(third.is_some());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`rda_db`] | values, tuples, relations, databases |
//! | [`rda_query`] | CQ AST/parser, hypergraphs, join trees, connexity, disruptive trios, layered join trees, contraction, FDs, classification |
//! | [`rda_orderstat`] | quickselect, weighted selection, sorted-matrix selection |
//! | [`rda_core`] | the paper's access/selection algorithms |
//! | [`rda_baseline`] | materialize-and-sort, ranked enumeration (any-k) |

pub use rda_baseline;
pub use rda_core;
pub use rda_db;
pub use rda_orderstat;
pub use rda_query;

/// The commonly used types and functions in one import.
pub mod prelude {
    pub use rda_baseline::{all_answers, MaterializedAccess, RankedEnumerator};
    pub use rda_core::{
        selection_lex, selection_sum, BuildError, LexDirectAccess, SumDirectAccess, Weights,
    };
    pub use rda_db::{Database, Relation, Tuple, Value};
    pub use rda_orderstat::TotalF64;
    pub use rda_query::classify::{classify, Problem, Reason, Verdict};
    pub use rda_query::parser::parse;
    pub use rda_query::query::CqBuilder;
    pub use rda_query::{Cq, Fd, FdSet, VarId, VarSet};
}
