#![warn(missing_docs)]

//! # ranked-access
//!
//! Direct access to ranked answers of conjunctive queries — a Rust
//! implementation of Carmeli, Tziavelis, Gatterbauer, Kimelfeld,
//! Riedewald, *"Tractable Orders for Direct Access to Ranked Answers of
//! Conjunctive Queries"* (PODS 2021 / arXiv:2012.11965).
//!
//! ## Quickstart
//!
//! One front door: [`Engine::prepare`](prelude::Engine::prepare) runs
//! the paper's dichotomies on a (query, order) pair and routes it to the
//! right algorithm — native direct access when tractable, a lazy
//! selection-backed handle when only selection is tractable, or an
//! explicit fallback chosen by [`Policy`](prelude::Policy). Whatever the
//! route, the returned [`AccessPlan`](prelude::AccessPlan) serves
//! answers through the uniform [`DirectAccess`](prelude::DirectAccess)
//! trait and explains its decision.
//!
//! ```
//! use ranked_access::prelude::*;
//!
//! // The paper's running example: Q(x, y, z) :- R(x, y), S(y, z).
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
//!
//! // Sorted by <x, y, z>: tractable, so the plan is O(log n) per access.
//! let plan = Engine::prepare(
//!     &q, &db,
//!     OrderSpec::lex(&q, &["x", "y", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::LexDirectAccess);
//! assert_eq!(plan.len(), 5);
//! let median = plan.access(plan.len() / 2).unwrap();   // O(log n)
//! assert_eq!(plan.inverted_access(&median), Some(2));   // O(log n)
//!
//! // <x, z, y> has a disruptive trio: direct access is provably hard,
//! // so the engine transparently serves ranked answers by per-access
//! // selection (Theorem 6.1) and can explain why.
//! let plan = Engine::prepare(
//!     &q, &db,
//!     OrderSpec::lex(&q, &["x", "z", "y"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::SelectionLex);
//! assert!(plan.explain().witness().unwrap().contains("disruptive trio"));
//! assert!(plan.access(0).is_some());
//!
//! // Sum-of-weights orders go through the same door.
//! let plan = Engine::prepare(
//!     &q, &db,
//!     OrderSpec::sum_by_value(),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::SelectionSum);
//!
//! // Outside both tractable regions the policy decides: Reject fails
//! // with the witness, Materialize/RankedEnum fall back explicitly.
//! let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
//! let err = Engine::prepare(
//!     &qp, &db,
//!     OrderSpec::lex(&qp, &["x", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap_err();
//! assert!(err.to_string().contains("intractable"));
//! let plan = Engine::prepare(
//!     &qp, &db,
//!     OrderSpec::lex(&qp, &["x", "z"]),
//!     &FdSet::empty(),
//!     Policy::Materialize,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::Materialized);
//! assert_eq!(plan.len(), 5);
//! ```
//!
//! The building blocks remain public for direct use:
//! `LexDirectAccess::build`, `SumDirectAccess::build`, and the
//! classification procedures in [`rda_query::classify`].
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`rda_db`] | values, tuples, relations, databases |
//! | [`rda_query`] | CQ AST/parser, hypergraphs, join trees, connexity, disruptive trios, layered join trees, contraction, FDs, classification |
//! | [`rda_orderstat`] | quickselect, weighted selection, sorted-matrix selection |
//! | [`rda_core`] | the `Engine`/`AccessPlan` facade plus the paper's access/selection algorithms |
//! | [`rda_baseline`] | materialize-and-sort, ranked enumeration (any-k) |

pub use rda_baseline;
pub use rda_core;
pub use rda_db;
pub use rda_orderstat;
pub use rda_query;

/// The commonly used types and functions in one import.
pub mod prelude {
    pub use rda_baseline::{all_answers, MaterializedAccess, RankedEnumerator};
    pub use rda_core::{
        AccessPlan, Backend, BuildError, DirectAccess, Engine, Explain, LexDirectAccess, OrderSpec,
        PlanError, Policy, RankedAnswers, SumDirectAccess, Weights,
    };
    pub use rda_db::{Database, Relation, Tuple, Value};
    pub use rda_orderstat::TotalF64;
    pub use rda_query::classify::{classify, Problem, Reason, Verdict};
    pub use rda_query::parser::parse;
    pub use rda_query::query::CqBuilder;
    pub use rda_query::{Cq, Fd, FdSet, VarId, VarSet};

    // Deprecated shims, re-exported so existing code keeps compiling.
    #[allow(deprecated)]
    pub use rda_core::{selection_lex, selection_sum};
}
