#![warn(missing_docs)]

//! # ranked-access
//!
//! Direct access to ranked answers of conjunctive queries — a Rust
//! implementation of Carmeli, Tziavelis, Gatterbauer, Kimelfeld,
//! Riedewald, *"Tractable Orders for Direct Access to Ranked Answers of
//! Conjunctive Queries"* (PODS 2021 / arXiv:2012.11965).
//!
//! ## Quickstart
//!
//! The serving lifecycle is **Database → Snapshot → Engine →
//! AccessPlan**: build a [`Database`](prelude::Database), freeze it
//! once into an immutable, dictionary-encoded
//! [`Snapshot`](prelude::Snapshot), wrap the snapshot in a stateful
//! [`Engine`](prelude::Engine), and [`prepare`](prelude::Engine::prepare)
//! plans. The engine runs the paper's dichotomies on each (query,
//! order) pair and routes it to the right algorithm — native direct
//! access when tractable, a lazy selection-backed handle when only
//! selection is tractable, or an explicit fallback chosen by
//! [`Policy`](prelude::Policy). Whatever the route, the returned
//! [`AccessPlan`](prelude::AccessPlan) serves answers through the
//! uniform [`DirectAccess`](prelude::DirectAccess) trait, explains its
//! decision, and — being `Send + Sync` behind an `Arc` — serves any
//! number of client threads. Equal requests are memoized: the engine's
//! bounded plan cache hands every client the same prepared plan.
//!
//! ```
//! use ranked_access::prelude::*;
//!
//! // The paper's running example: Q(x, y, z) :- R(x, y), S(y, z).
//! let q = parse("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
//! let db = Database::new()
//!     .with_i64_rows("R", 2, vec![vec![1, 5], vec![1, 2], vec![6, 2]])
//!     .with_i64_rows("S", 2, vec![vec![5, 3], vec![5, 4], vec![5, 6], vec![2, 5]]);
//!
//! // Freeze once: the whole active domain is interned into one
//! // order-preserving dictionary and every relation is encoded into
//! // columnar form exactly once — shared by every plan below.
//! let engine = Engine::new(db.freeze());
//!
//! // Sorted by <x, y, z>: tractable, so the plan is O(log n) per access.
//! let plan = engine.prepare(
//!     &q,
//!     OrderSpec::lex(&q, &["x", "y", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::LexDirectAccess);
//! assert_eq!(plan.len(), 5);
//! let median = plan.access(plan.len() / 2).unwrap();   // O(log n)
//! assert_eq!(plan.inverted_access(&median), Some(2));   // O(log n)
//!
//! // Pagination is native: a window pays the rank bracketing once and
//! // walks the structure tuple by tuple, and `stream()` enumerates
//! // lazily in batches (any-k style, nothing fully materialized).
//! assert_eq!(plan.top_k(2).len(), 2);
//! assert_eq!(plan.page(3, 10), plan.access_range(3..5));
//! let mut page = WindowBuf::new();                      // reusable, alloc-free refills
//! assert_eq!(plan.window_into(1..4, &mut page), 3);
//! assert_eq!(plan.stream().count(), 5);
//!
//! // Preparing the same request again is a cache hit: the same
//! // Arc<AccessPlan> comes back, nothing is re-classified or rebuilt.
//! let again = engine.prepare(
//!     &q,
//!     OrderSpec::lex(&q, &["x", "y", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&plan, &again));
//!
//! // <x, z, y> has a disruptive trio: direct access is provably hard,
//! // so the engine transparently serves ranked answers by per-access
//! // selection (Theorem 6.1) and can explain why.
//! let plan = engine.prepare(
//!     &q,
//!     OrderSpec::lex(&q, &["x", "z", "y"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::SelectionLex);
//! assert!(plan.explain().witness().unwrap().contains("disruptive trio"));
//! assert!(plan.access(0).is_some());
//!
//! // Sum-of-weights orders go through the same door.
//! let plan = engine.prepare(
//!     &q,
//!     OrderSpec::sum_by_value(),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::SelectionSum);
//!
//! // Outside both tractable regions the policy decides: Reject fails
//! // with the witness, Materialize/RankedEnum fall back explicitly.
//! let qp = parse("Q(x, z) :- R(x, y), S(y, z)").unwrap();
//! let err = engine.prepare(
//!     &qp,
//!     OrderSpec::lex(&qp, &["x", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap_err();
//! assert!(err.to_string().contains("intractable"));
//! let plan = engine.prepare(
//!     &qp,
//!     OrderSpec::lex(&qp, &["x", "z"]),
//!     &FdSet::empty(),
//!     Policy::Materialize,
//! ).unwrap();
//! assert_eq!(plan.backend(), Backend::Materialized);
//! assert_eq!(plan.len(), 5);
//!
//! // Plans are Send + Sync: clone the Arc into worker threads and
//! // hammer the same structure concurrently.
//! let shared = engine.prepare(
//!     &q,
//!     OrderSpec::lex(&q, &["x", "y", "z"]),
//!     &FdSet::empty(),
//!     Policy::Reject,
//! ).unwrap();
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let plan = std::sync::Arc::clone(&shared);
//!         s.spawn(move || {
//!             for k in 0..plan.len() {
//!                 assert!(plan.access(k).is_some());
//!             }
//!         });
//!     }
//! });
//! ```
//!
//! ## Live data: delta freezes and generations
//!
//! Snapshots are versioned. Keep the [`Database`](prelude::Database) as
//! your mutable source of truth — [`insert_into`](prelude::Database::insert_into)
//! and [`delete_from`](prelude::Database::delete_from) record a
//! per-relation mutation log — and roll the served state forward
//! incrementally: [`Snapshot::freeze_delta`](prelude::Snapshot::freeze_delta)
//! re-encodes **only the dirty relations** (clean encodings are
//! `Arc`-shared into the next generation) and
//! [`Engine::advance`](prelude::Engine::advance) swaps the served
//! snapshot atomically, carrying cached plans whose relations did not
//! change and invalidating the rest.
//!
//! ```
//! use ranked_access::prelude::*;
//!
//! let q = parse("Q(x, y) :- R(x, y)").unwrap();
//! let mut db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
//! let engine = Engine::new(db.clone().freeze());       // generation 0
//! db.clear_mutation_log();                             // db matches gen 0
//! let plan = engine
//!     .prepare(&q, OrderSpec::lex(&q, &["x", "y"]), &FdSet::empty(), Policy::Reject)
//!     .unwrap();
//! assert_eq!((plan.len(), plan.generation()), (1, 0));
//!
//! db.insert_into("R", [Value::int(3), Value::int(4)].into_iter().collect());
//! engine.advance_delta(&mut db);                       // freeze delta + swap
//! let fresh = engine
//!     .prepare(&q, OrderSpec::lex(&q, &["x", "y"]), &FdSet::empty(), Policy::Reject)
//!     .unwrap();
//! assert_eq!((fresh.len(), fresh.generation()), (2, 1));
//! assert_eq!(plan.len(), 1); // in-flight readers keep their generation
//! ```
//!
//! As of 0.5.0 the pre-snapshot shims (`Engine::prepare_stateless`,
//! `Database::take`, and the PR-1 selection free functions) are gone:
//! every caller freezes once and routes through a stateful engine. For
//! one-shot scripts, `Engine::new(db.freeze()).prepare_uncached(..)`
//! is the equivalent — same routing, no memoization.
//!
//! The building blocks remain public for direct use:
//! `LexDirectAccess::build_on`, `SumDirectAccess::build_on` (and their
//! freeze-internally `build` conveniences), plus the classification
//! procedures in [`mod@rda_query::classify`].
//!
//! ## Cold starts: persistent snapshots
//!
//! Generations can outlive the process. A
//! [`SnapshotStore`](prelude::SnapshotStore) persists the frozen base
//! plus one small file per delta, and
//! [`Engine::open`](prelude::Engine::open) cold-starts a serving
//! engine from the directory — zero-copy (the files are mmapped; no
//! value is re-interned, no relation re-encoded), with every damage
//! mode surfacing as a typed
//! [`PersistError`](prelude::PersistError) rather than a panic. The
//! restored snapshot keeps its uid, ancestry, and per-relation
//! versions, so cursor tokens minted before a restart resume after it.
//!
//! ```
//! use ranked_access::prelude::*;
//!
//! let mut db = Database::new().with_i64_rows("R", 2, vec![vec![1, 2]]);
//! let base = db.clone().freeze();                      // generation 0
//! db.clear_mutation_log();
//!
//! let dir = std::env::temp_dir().join(format!("rda-doc-store-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let store = SnapshotStore::create(&dir, &base).unwrap();
//!
//! db.insert_into("R", [Value::int(3), Value::int(4)].into_iter().collect());
//! store.freeze_delta(&base, &mut db).unwrap();         // freeze + append delta
//!
//! // ... process restarts ...
//! let engine = Engine::open(&dir).unwrap();            // mmap + replay
//! assert_eq!(engine.snapshot().generation(), 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`rda_db`] | values, tuples, relations, databases, frozen dictionary-encoded snapshots, the checksummed on-disk snapshot format |
//! | [`rda_query`] | CQ AST/parser, hypergraphs, join trees, connexity, disruptive trios, layered join trees, contraction, FDs, classification |
//! | [`rda_orderstat`] | quickselect, weighted selection, sorted-matrix selection |
//! | [`rda_core`] | the `Engine`/`AccessPlan` serving core plus the paper's access/selection algorithms |
//! | [`rda_baseline`] | materialize-and-sort, ranked enumeration (any-k) |
//! | [`rda_serve`] | in-process request front door: worker pool, sessions, opaque resumable cursors, backpressure |

pub use rda_baseline;
pub use rda_core;
pub use rda_db;
pub use rda_orderstat;
pub use rda_query;
pub use rda_serve;

/// The commonly used types and functions in one import.
pub mod prelude {
    pub use rda_baseline::{all_answers, ranked_prefix, MaterializedAccess, RankedEnumerator};
    pub use rda_core::{
        AccessPlan, ArenaLayout, Backend, BuildBudget, BuildError, DirectAccess, Engine, Explain,
        LexDirectAccess, OpenError, OrderSpec, PlanError, Policy, RankedAnswers, RankedStream,
        SelectionLexHandle, SelectionSumHandle, ShardRouting, ShardedLexAccess, SumDirectAccess,
        Weights, WindowBuf,
    };
    pub use rda_db::{
        Database, PersistError, Relation, ShardConfigError, ShardDirectory, ShardSpec,
        ShardedSnapshot, Snapshot, SnapshotStore, Tuple, Value,
    };
    pub use rda_orderstat::TotalF64;
    pub use rda_query::classify::{classify, Problem, Reason, Verdict};
    pub use rda_query::parser::parse;
    pub use rda_query::query::CqBuilder;
    pub use rda_query::{Cq, Fd, FdSet, VarId, VarSet};
    pub use rda_serve::{
        PageOutcome, Prepared, RetryPolicy, ServeError, Server, ServerConfig, ServerHealth,
        Session, StaleReason, Token,
    };
}
